#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/fmt.hpp"
#include "gpu/backend.hpp"
#include "gpu/backend_kind.hpp"
#include "obs/export.hpp"

// Baked in by the build (src/serve/CMakeLists.txt); the fallback keeps
// non-CMake compiles working.
#ifndef SACLO_GIT_SHA
#define SACLO_GIT_SHA "unknown"
#endif

namespace saclo::serve {

namespace {
double us_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

double us_since_epoch(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t.time_since_epoch()).count();
}
}  // namespace

namespace {
int fleet_slots(const ServeRuntime::Options& options) {
  return std::max(1, std::max(options.devices, options.max_devices));
}
}  // namespace

ServeRuntime::ServeRuntime(const Options& options)
    : options_(options), metrics_(fleet_slots(options)) {
  if (options_.devices <= 0) {
    throw ServeError(cat("fleet needs at least one device, got ", options_.devices));
  }
  if (options_.max_devices != 0 && options_.max_devices < options_.devices) {
    throw ServeError(cat("max_devices ", options_.max_devices, " is below devices ",
                         options_.devices, " — the elastic range is [1, max_devices]"));
  }
  if (options_.warmup_ms < 0) {
    throw ServeError(cat("warmup_ms must be >= 0, got ", options_.warmup_ms));
  }
  if (options_.alloc_class_cap_bytes < 0) {
    throw ServeError(
        cat("alloc_class_cap_bytes must be >= 0, got ", options_.alloc_class_cap_bytes));
  }
  if (options_.queue_capacity == 0) {
    throw ServeError("queue_capacity must be positive");
  }
  if (options_.max_retries < 0) {
    throw ServeError(cat("max_retries must be >= 0, got ", options_.max_retries));
  }
  if (options_.batch_max < 1) {
    throw ServeError(cat("batch_max must be >= 1, got ", options_.batch_max));
  }
  if (options_.batch_wait_ms < 0) {
    throw ServeError(cat("batch_wait_ms must be >= 0, got ", options_.batch_wait_ms));
  }
  if (options_.tenant_rate_limit < 0) {
    throw ServeError(cat("tenant_rate_limit must be >= 0, got ", options_.tenant_rate_limit));
  }
  if (options_.tenant_rate_limit > 0 && options_.tenant_rate_burst < 1) {
    throw ServeError(
        cat("tenant_rate_burst must be >= 1 when rate limiting, got ",
            options_.tenant_rate_burst));
  }
  if (options_.telemetry_port > 65535) {
    throw ServeError(cat("telemetry_port must be <= 65535, got ", options_.telemetry_port));
  }
  const int slots = fleet_slots(options_);
  for (const fault::FaultSpec& spec : options_.fault_plan.specs()) {
    if (spec.device >= slots) {
      throw ServeError(cat("fault plan targets device ", spec.device, " but the fleet has ",
                           slots, " device slot(s)"));
    }
  }
  paused_ = options_.start_paused;
  if (options_.event_log_capacity > 0) {
    event_log_ = std::make_unique<obs::EventLog>(options_.event_log_capacity);
  }
  if (options_.tenant_rate_limit > 0) {
    admission_ = std::make_unique<AdmissionController>(options_.tenant_rate_limit,
                                                       options_.tenant_rate_burst);
  }
  devices_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    auto dev = std::make_unique<Device>();
    dev->gpu = std::make_unique<gpu::VirtualGpu>(options_.device, options_.workers_per_device,
                                                 options_.backend);
    if (options_.cache_buffers) {
      dev->cache = std::make_unique<CachingDeviceAllocator>(dev->gpu->memory(),
                                                            options_.alloc_class_cap_bytes);
      dev->gpu->set_allocator(dev->cache.get());
    }
    const std::vector<fault::FaultSpec> specs = options_.fault_plan.specs_for(i);
    if (!specs.empty()) {
      dev->injector = std::make_unique<fault::FaultInjector>(specs);
      dev->gpu->set_fault_injector(dev->injector.get());
    }
    // Spare elastic slots start retired: their dispatchers park in
    // work_ready_ (their queues can only fill after scale_up()).
    if (i >= options_.devices) {
      dev->state = DevState::Inactive;
      metrics_.set_active(i, false);
    }
    devices_.push_back(std::move(dev));
  }
  for (int i = 0; i < slots; ++i) {
    devices_[static_cast<std::size_t>(i)]->dispatcher =
        std::thread([this, i] { dispatcher_loop(i); });
  }
  {
    std::vector<std::string> names;
    for (gpu::BackendKind kind : gpu::available_backends()) {
      names.push_back(gpu::backend_kind_name(kind));
    }
    metrics_.set_build_info(SACLO_GIT_SHA, join(names, ","));
  }
  mount_telemetry();
}

ServeRuntime::~ServeRuntime() { shutdown(); }

void ServeRuntime::mount_telemetry() {
  if (options_.telemetry_port < 0) return;
  telemetry_ = std::make_unique<obs::TelemetryServer>(options_.telemetry_port);
  telemetry_->handle("/metrics", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = metrics_prometheus();
    return r;
  });
  telemetry_->handle("/healthz", [this](const obs::HttpRequest&) {
    // Liveness: answering at all is the signal. The body carries the
    // barest vitals for a human curl.
    obs::HttpResponse r;
    r.body = cat("ok\nuptime_real_us ", fixed(trace_clock_.now_us(), 0), "\ninflight ",
                 inflight_jobs(), "\n");
    return r;
  });
  telemetry_->handle("/readyz", [this](const obs::HttpRequest&) {
    std::string why;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      int active = 0;
      int healthy = 0;
      for (const auto& dev : devices_) {
        if (dev->state != DevState::Active) continue;
        ++active;
        if (!dev->degraded) ++healthy;
      }
      if (stopping_) {
        why = "stopping";
      } else if (active == 0) {
        why = "no active devices";
      } else if (healthy == 0) {
        why = "all active devices degraded";
      } else if (total_inflight_ >= options_.queue_capacity) {
        why = cat("queue saturated (", total_inflight_, "/", options_.queue_capacity, ")");
      }
    }
    if (why.empty()) return obs::HttpResponse{200, "text/plain; charset=utf-8", "ready\n"};
    return obs::HttpResponse{503, "text/plain; charset=utf-8", cat("not ready: ", why, "\n")};
  });
  telemetry_->handle("/debug/events", [this](const obs::HttpRequest& request) {
    if (event_log_ == nullptr) {
      return obs::HttpResponse{404, "text/plain; charset=utf-8",
                               "event log disabled (event_log_capacity = 0)\n"};
    }
    const long n = request.query_long("n", 64);
    const std::vector<obs::Event> events = event_log_->snapshot();
    std::size_t start = 0;
    if (n >= 0 && events.size() > static_cast<std::size_t>(n)) {
      start = events.size() - static_cast<std::size_t>(n);
    }
    std::string body;
    for (std::size_t i = start; i < events.size(); ++i) {
      body += obs::event_json(events[i]);
      body += "\n";
    }
    return obs::HttpResponse{200, "application/x-ndjson", std::move(body)};
  });
  telemetry_->handle("/debug/trace", [this](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "application/json", merged_trace_json()};
  });
  telemetry_->handle("/debug/fleet", [this](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "application/json", metrics_json()};
  });
  telemetry_->start();
}

void ServeRuntime::on_alert_transitions(const std::vector<obs::AlertTransition>& transitions,
                                        std::size_t active_count) {
  for (const obs::AlertTransition& t : transitions) {
    emit(t.raised ? obs::EventType::AlertRaised : obs::EventType::AlertCleared, /*job=*/0,
         /*device=*/-1, /*attempt=*/0, static_cast<std::int64_t>(t.kind), /*t_sim_us=*/0.0);
  }
  metrics_.set_active_alerts(static_cast<int>(active_count));
}

void ServeRuntime::emit(obs::EventType type, std::uint64_t job, int device, int attempt,
                        std::int64_t arg, double t_sim_us) {
  if (event_log_ == nullptr) return;
  obs::Event event;
  event.type = type;
  event.backend = static_cast<std::uint8_t>(options_.backend);
  event.job = job;
  event.device = device;
  event.attempt = attempt;
  event.arg = arg;
  event.t_real_us = trace_clock_.now_us();
  event.t_sim_us = t_sim_us;
  event_log_->emit(event);
}

std::future<JobResult> ServeRuntime::shed_locked(JobSpec&& spec, ShedReason reason) {
  const std::uint64_t id = next_job_id_++;
  metrics_.on_shed(spec.tenant, reason);
  emit(obs::EventType::JobShed, id, /*device=*/-1, /*attempt=*/0,
       static_cast<std::int64_t>(reason), 0.0);
  // The typed Shed status: the future resolves right here — a shed
  // submission can never hang a caller waiting on it.
  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();
  promise.set_exception(std::make_exception_ptr(ShedError(reason, spec.tenant)));
  return future;
}

std::optional<std::future<JobResult>> ServeRuntime::submit_impl(JobSpec spec, bool blocking) {
  spec.validate();
  if (options_.batch_max > 1 && spec.deadline_ms > 0 &&
      spec.deadline_ms <= options_.batch_wait_ms) {
    // The batcher may hold the job open for a full batch window — a
    // deadline inside it could expire before dispatch even starts.
    throw ServeError(cat("deadline_ms ", spec.deadline_ms, " is within one batch window (",
                         "batch_wait_ms ", options_.batch_wait_ms,
                         "): the job could expire while coalescing — lower batch_wait_ms or "
                         "raise the deadline"));
  }
  const double estimate = estimate_job_us(spec, options_.device);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!stopping_ && admission_ != nullptr &&
      !admission_->admit(spec.tenant, std::chrono::steady_clock::now())) {
    return shed_locked(std::move(spec), ShedReason::RateLimited);
  }
  if (!stopping_ && options_.shed_on_full && total_inflight_ >= options_.queue_capacity) {
    return shed_locked(std::move(spec), ShedReason::QueueFull);
  }
  if (blocking) {
    space_available_.wait(lock, [&] { return total_inflight_ < options_.queue_capacity || stopping_; });
  }
  if (stopping_) {
    if (!blocking) return std::nullopt;
    throw ServeError("submit on a shut-down ServeRuntime");
  }
  if (total_inflight_ >= options_.queue_capacity) return std::nullopt;  // try_submit only

  // Least-loaded placement over healthy devices: the one with the
  // smallest outstanding cost-model backlog (queued + running).
  const std::size_t target = pick_device_locked(/*exclude=*/-1);

  Pending pending;
  pending.id = next_job_id_++;
  pending.spec = std::move(spec);
  pending.estimate_us = estimate;
  pending.submit_time = std::chrono::steady_clock::now();
  pending.ready_time = pending.submit_time;
  if (pending.spec.deadline_ms > 0) {
    pending.deadline_abs_us =
        us_since_epoch(pending.submit_time) + pending.spec.deadline_ms * 1000.0;
  }
  if (!started_serving_) {
    started_serving_ = true;
    serve_start_ = pending.submit_time;
  }
  std::future<JobResult> future = pending.promise.get_future();
  // Emit before the queue push (emit is lock-free, so holding mutex_ is
  // cheap): once the job is visible to a dispatcher, its job_dispatched
  // could otherwise overtake these in the ring.
  emit(obs::EventType::JobAdmitted, pending.id, /*device=*/-1, /*attempt=*/0,
       pending.spec.frames, 0.0);
  emit(obs::EventType::JobPlaced, pending.id, static_cast<int>(target), /*attempt=*/0,
       static_cast<std::int64_t>(std::llround(estimate)), 0.0);
  const Priority priority = pending.spec.priority;
  metrics_.on_submit(static_cast<int>(target), pending.spec.tenant);
  devices_[target]->queue.push_back(std::move(pending));
  devices_[target]->backlog_estimate_us += estimate;
  ++total_queued_;
  ++total_inflight_;
  signal_preempt_locked(target, priority);
  lock.unlock();
  work_ready_.notify_all();
  return future;
}

std::future<JobResult> ServeRuntime::submit(JobSpec spec) {
  auto future = submit_impl(std::move(spec), /*blocking=*/true);
  return std::move(*future);
}

std::optional<std::future<JobResult>> ServeRuntime::try_submit(JobSpec spec) {
  return submit_impl(std::move(spec), /*blocking=*/false);
}

void ServeRuntime::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_ready_.notify_all();
}

void ServeRuntime::drain() {
  resume();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return total_inflight_ == 0; });
}

void ServeRuntime::shutdown() {
  // Stop serving scrapes before tearing the fleet down: no handler can
  // be mid-read while dispatchers join and devices retire.
  if (telemetry_) telemetry_->stop();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Idempotent: a second call only waits for the joins below.
    }
    stopping_ = true;
    paused_ = false;
  }
  work_ready_.notify_all();
  space_available_.notify_all();
  drain_done_.notify_all();  // unblock a scale_down() mid-wait
  for (auto& dev : devices_) {
    if (dev->dispatcher.joinable()) dev->dispatcher.join();
  }
}

void ServeRuntime::heal_elapsed_locked() {
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    Device& dev = *devices_[i];
    if (options_.degraded_cooldown_ms >= 0 && dev.degraded &&
        us_between(dev.degraded_since, now) >= options_.degraded_cooldown_ms * 1000.0) {
      dev.degraded = false;
      metrics_.on_healed(static_cast<int>(i));
      emit(obs::EventType::DeviceHealed, /*job=*/0, static_cast<int>(i), /*attempt=*/0,
           /*arg=*/0, dev.gpu->clock_us());
    }
    // Warm-up rides the same lazy sweep as degraded cooldowns: a fresh
    // scale-up graduates into full placement once its window elapsed.
    if (dev.warming && us_between(dev.warm_since, now) >= options_.warmup_ms * 1000.0) {
      dev.warming = false;
    }
  }
}

std::size_t ServeRuntime::pick_device_locked(int exclude) {
  heal_elapsed_locked();
  std::optional<std::size_t> best;
  const auto consider = [&](bool allow_impaired, bool allow_excluded) {
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      // Only active slots ever take placements: inactive ones have no
      // work loop to speak of, draining ones are on their way out.
      if (devices_[i]->state != DevState::Active) continue;
      if (!allow_impaired && (devices_[i]->degraded || devices_[i]->warming)) continue;
      if (!allow_excluded && exclude >= 0 && i == static_cast<std::size_t>(exclude)) continue;
      if (!best || devices_[i]->backlog_estimate_us < devices_[*best]->backlog_estimate_us) {
        best = i;
      }
    }
  };
  consider(/*allow_impaired=*/false, /*allow_excluded=*/false);
  // Whole fleet degraded (or still warming): still serve — a one-shot
  // fault's device works again, and a permanently broken one burns the
  // job's retry budget.
  if (!best) consider(/*allow_impaired=*/true, /*allow_excluded=*/false);
  if (!best) consider(/*allow_impaired=*/true, /*allow_excluded=*/true);  // 1-device fleet
  return *best;
}

int ServeRuntime::active_devices_locked() const {
  int n = 0;
  for (const auto& dev : devices_) {
    if (dev->state == DevState::Active) ++n;
  }
  return n;
}

int ServeRuntime::active_devices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_devices_locked();
}

bool ServeRuntime::device_active(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return devices_.at(static_cast<std::size_t>(device))->state == DevState::Active;
}

int ServeRuntime::scale_up() {
  if (options_.max_devices <= 0) {
    throw ServeError("scale_up on a fixed fleet (construct with max_devices > 0)");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw ServeError("scale_up on a shut-down ServeRuntime");
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    Device& dev = *devices_[i];
    if (dev.state != DevState::Inactive) continue;
    dev.state = DevState::Active;
    if (options_.warmup_ms > 0) {
      dev.warming = true;
      dev.warm_since = std::chrono::steady_clock::now();
    }
    metrics_.on_scale_up(static_cast<int>(i));
    emit(obs::EventType::ScaleUp, /*job=*/0, static_cast<int>(i), /*attempt=*/0,
         active_devices_locked(), dev.gpu->clock_us());
    lock.unlock();
    work_ready_.notify_all();
    return static_cast<int>(i);
  }
  throw ServeError(
      cat("scale_up: every slot is already active or draining (max_devices ",
          options_.max_devices, ")"));
}

int ServeRuntime::scale_down(int device) {
  if (options_.max_devices <= 0) {
    throw ServeError("scale_down on a fixed fleet (construct with max_devices > 0)");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw ServeError("scale_down on a shut-down ServeRuntime");
  if (active_devices_locked() <= 1) {
    throw ServeError("scale_down would leave the fleet without an active device");
  }
  std::size_t victim;
  if (device >= 0) {
    if (static_cast<std::size_t>(device) >= devices_.size()) {
      throw ServeError(cat("scale_down: device ", device, " out of range (fleet has ",
                           devices_.size(), " slot(s))"));
    }
    if (devices_[static_cast<std::size_t>(device)]->state != DevState::Active) {
      throw ServeError(cat("scale_down: device ", device, " is not active"));
    }
    victim = static_cast<std::size_t>(device);
  } else {
    // Cheapest drain: the active device with the smallest outstanding
    // cost-model backlog.
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (devices_[i]->state != DevState::Active) continue;
      if (!best || devices_[i]->backlog_estimate_us < devices_[*best]->backlog_estimate_us) {
        best = i;
      }
    }
    victim = *best;  // >= 2 active devices checked above
  }

  Device& dev = *devices_[victim];
  dev.state = DevState::Draining;
  dev.warming = false;
  // The gate stops the running job at its next frame boundary; the
  // dispatcher then re-homes it through the preemption re-enqueue path.
  dev.drain_flag.store(true, std::memory_order_relaxed);

  // Re-home everything still queued — in-backoff retries included, with
  // their ready_time gates intact (the target honors them). Zero jobs
  // lost, zero duplicated: each Pending moves exactly once, promise,
  // progress and all.
  int rehomed = 0;
  while (!dev.queue.empty()) {
    Pending job = std::move(dev.queue.front());
    dev.queue.pop_front();
    dev.backlog_estimate_us -= job.estimate_us;
    const Priority prio = job.spec.priority;
    const std::size_t target = pick_device_locked(/*exclude=*/-1);  // never Draining
    devices_[target]->backlog_estimate_us += job.estimate_us;
    metrics_.on_rehomed(static_cast<int>(victim), static_cast<int>(target));
    devices_[target]->queue.push_back(std::move(job));
    signal_preempt_locked(target, prio);
    ++rehomed;
  }
  metrics_.on_drain_started(static_cast<int>(victim), rehomed);
  emit(obs::EventType::DrainStarted, /*job=*/0, static_cast<int>(victim), /*attempt=*/0,
       rehomed, dev.gpu->clock_us());
  work_ready_.notify_all();  // wake the victim (to retire) and the targets

  drain_done_.wait(lock, [&] { return dev.state == DevState::Inactive || stopping_; });
  if (dev.state != DevState::Inactive) {
    throw ServeError("scale_down interrupted by shutdown");
  }
  emit(obs::EventType::ScaleDown, /*job=*/0, static_cast<int>(victim), /*attempt=*/0,
       active_devices_locked(), dev.gpu->clock_us());
  return static_cast<int>(victim);
}

SchedKey ServeRuntime::sched_key(const Pending& pending) const {
  SchedKey key;
  key.priority = pending.spec.priority;
  key.deadline_us = pending.deadline_abs_us;
  key.seq = pending.id;
  return key;
}

void ServeRuntime::signal_preempt_locked(std::size_t device, Priority priority) {
  if (options_.policy == SchedPolicy::Fifo || !options_.preemption) return;
  Device& dev = *devices_[device];
  if (static_cast<int>(priority) < dev.running_class.load(std::memory_order_relaxed)) {
    dev.preempt_flag.store(true, std::memory_order_relaxed);
  }
}

bool ServeRuntime::steal_into_locked(int thief) {
  // Victim: the peer with the deepest queue. The thief's own queue is
  // empty — that's why it steals. Backing-off (retried) entries are
  // stealable too: they keep their ready_time, and the thief's normal
  // soonest-wait honors it — an idle thief parked in work_ready_ would
  // otherwise never wake when a victim-side backoff elapses.
  int victim = -1;
  std::size_t victim_depth = 0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) == thief) continue;
    if (devices_[i]->state != DevState::Active) continue;  // draining queues are spoken for
    const std::size_t n = devices_[i]->queue.size();
    if (n > victim_depth) {
      victim = static_cast<int>(i);
      victim_depth = n;
    }
  }
  if (victim < 0) return false;
  Device& self = *devices_[static_cast<std::size_t>(thief)];
  Device& from = *devices_[static_cast<std::size_t>(victim)];
  // Take the policy-worst half (at least one): the victim keeps the
  // jobs it would run first, so stealing never inverts its priorities.
  const std::size_t take = std::max<std::size_t>(1, victim_depth / 2);
  for (std::size_t k = 0; k < take; ++k) {
    auto worst = from.queue.end();
    for (auto it = from.queue.begin(); it != from.queue.end(); ++it) {
      if (worst == from.queue.end() ||
          schedules_before(options_.policy, sched_key(*worst), sched_key(*it))) {
        worst = it;
      }
    }
    if (worst == from.queue.end()) break;
    Pending stolen = std::move(*worst);
    from.queue.erase(worst);
    from.backlog_estimate_us -= stolen.estimate_us;
    self.backlog_estimate_us += stolen.estimate_us;
    metrics_.on_steal(victim, thief);
    emit(obs::EventType::JobStolen, stolen.id, thief, stolen.attempts,
         static_cast<std::int64_t>(victim), self.gpu->clock_us());
    self.queue.push_back(std::move(stolen));
  }
  return true;
}

bool ServeRuntime::device_degraded(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return devices_.at(static_cast<std::size_t>(device))->degraded;
}

void ServeRuntime::finish_job(Device& dev, double estimate_us) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dev.backlog_estimate_us -= estimate_us;
    --total_inflight_;
    if (total_inflight_ == 0) idle_.notify_all();
  }
  space_available_.notify_all();
}

std::size_t ServeRuntime::queued_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

std::size_t ServeRuntime::inflight_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_inflight_;
}

CachingDeviceAllocator::Stats ServeRuntime::allocator_stats(int device) const {
  const Device& dev = *devices_.at(static_cast<std::size_t>(device));
  if (!dev.cache) throw ServeError("fleet was built with cache_buffers=false");
  return dev.cache->stats();
}

double ServeRuntime::device_sim_clock_us(int device) const {
  // The clock is only advanced by the dispatcher; reading a stale value
  // while a job runs is fine for reporting, but tests call this after
  // drain(), when the dispatcher is parked.
  return devices_.at(static_cast<std::size_t>(device))->gpu->clock_us();
}

std::string ServeRuntime::device_trace_json(int device) const {
  return devices_.at(static_cast<std::size_t>(device))->gpu->profiler().chrome_trace_json();
}

void ServeRuntime::refresh_allocator_stats() {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->cache) {
      metrics_.set_allocator_stats(static_cast<int>(i), devices_[i]->cache->stats());
    }
  }
}

std::string ServeRuntime::report() {
  refresh_allocator_stats();
  return metrics_.report();
}

std::string ServeRuntime::metrics_json() {
  refresh_allocator_stats();
  return metrics_.json();
}

std::string ServeRuntime::metrics_prometheus() {
  refresh_allocator_stats();
  if (event_log_ != nullptr) metrics_.set_events_dropped(event_log_->dropped());
  return metrics_.prometheus();
}

std::string ServeRuntime::events_jsonl() const {
  return event_log_ != nullptr ? event_log_->jsonl() : std::string();
}

std::vector<obs::Event> ServeRuntime::events() const {
  return event_log_ != nullptr ? event_log_->snapshot() : std::vector<obs::Event>{};
}

std::vector<obs::DeviceTrace> ServeRuntime::device_traces() const {
  // intervals_snapshot() copies under the profiler's recording lock, so
  // this is safe mid-run — the live /debug/trace endpoint and the
  // critical-path analyzer both go through here.
  std::vector<obs::DeviceTrace> traces;
  traces.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    traces.push_back({static_cast<int>(i), devices_[i]->gpu->profiler().intervals_snapshot(),
                      devices_[i]->gpu->backend_name()});
  }
  return traces;
}

std::string ServeRuntime::merged_trace_json() const {
  const std::vector<obs::Event> events =
      event_log_ != nullptr ? event_log_->snapshot() : std::vector<obs::Event>{};
  return obs::merged_chrome_trace(device_traces(), events);
}

JobResult ServeRuntime::run_job(Device& dev, int index, Pending& pending, bool flush,
                                const apps::FrameGate& gate) {
  const auto dispatch_time = std::chrono::steady_clock::now();
  const JobSpec& spec = pending.spec;
  JobResult result;
  result.id = pending.id;
  result.device = index;
  result.attempts = pending.attempts;
  result.route = spec.route;
  result.frames = spec.frames;
  result.queue_wait_us = us_between(pending.submit_time, dispatch_time);
  result.tenant = spec.tenant;
  result.priority = spec.priority;
  result.deadline_us = spec.deadline_ms * 1000.0;
  const int first_frame = pending.next_frame;

  // Compiled drivers live for the dispatcher's lifetime, keyed by
  // (route, geometry): repeat traffic skips parse/typecheck/plan and
  // goes straight to the frame loop.
  thread_local std::map<std::string, std::unique_ptr<apps::SacDownscaler>> sac_drivers;
  thread_local std::map<std::string, std::unique_ptr<apps::GaspardDownscaler>> gaspard_drivers;

  // Per-frame progress events. The std::function (and its capture
  // allocation) is only materialized when the event log is on; the
  // disabled path hands the pipelines an empty callback, costing one
  // branch per frame and zero allocations.
  apps::FrameCallback on_frame;
  if (event_log_ != nullptr) {
    gpu::VirtualGpu* gpu = dev.gpu.get();
    const std::uint64_t job_id = pending.id;
    const int attempt = pending.attempts;
    on_frame = [this, gpu, job_id, attempt, index](int frame) {
      emit(obs::EventType::FrameDone, job_id, index, attempt, frame, gpu->clock_us());
    };
  }

  const int exec = spec.effective_exec_frames();
  if (spec.route == Route::Gaspard) {
    // The cache key is the batch key: it folds in the optimizer level,
    // so opt-level-0 and fused drivers of the same geometry coexist.
    const std::string key = batch_key(spec);
    auto it = gaspard_drivers.find(key);
    if (it == gaspard_drivers.end()) {
      apps::GaspardDownscaler::Options opts;
      opts.device = options_.device;
      opts.workers = options_.workers_per_device;
      opts.rgb = spec.channels == 3;
      opts.async_streams = options_.async_streams;
      opts.opt_level = spec.opt_level;
      it = gaspard_drivers
               .emplace(key, std::make_unique<apps::GaspardDownscaler>(spec.config, opts))
               .first;
    }
    auto r = it->second->run_on(*dev.gpu, spec.frames, exec, on_frame, flush, first_frame, gate);
    pending.ops_done += r.h;
    pending.ops_done += r.v;
    pending.sim_wall_done_us += r.wall_us;
    // Keep the newest executed frame across chunks (a resumed chunk
    // past exec_frames runs simulated-only and produces no output).
    if (first_frame < std::min(r.next_frame, exec)) {
      pending.partial_output = std::move(r.last_output);
    }
    pending.next_frame = r.next_frame;
  } else {
    const std::string key = driver_key(spec.route, spec.config);
    auto it = sac_drivers.find(key);
    if (it == sac_drivers.end()) {
      apps::SacDownscaler::Options opts;
      opts.generic = spec.route == Route::SacGeneric;
      opts.device = options_.device;
      opts.host = options_.host;
      opts.workers = options_.workers_per_device;
      opts.async_streams = options_.async_streams;
      it = sac_drivers.emplace(key, std::make_unique<apps::SacDownscaler>(spec.config, opts))
               .first;
    }
    auto r = it->second->run_cuda_chain_on(*dev.gpu, spec.frames, spec.channels, exec, on_frame,
                                           flush, first_frame, gate);
    pending.ops_done += r.h;
    pending.ops_done += r.v;
    pending.sim_wall_done_us += r.wall_us;
    if (first_frame < std::min(r.next_frame, exec)) {
      pending.partial_output = std::move(r.last_output);
    }
    pending.next_frame = r.next_frame;
  }

  // The result always reports the whole job so far — every completed
  // chunk of a preempted job, not just this dispatch.
  const auto done_time = std::chrono::steady_clock::now();
  pending.exec_done_us += us_between(dispatch_time, done_time);
  result.ops = pending.ops_done;
  result.sim_wall_us = pending.sim_wall_done_us;
  result.exec_us = pending.exec_done_us;
  result.latency_us = us_between(pending.submit_time, done_time);
  result.preemptions = pending.preemptions;
  result.slo_met = result.deadline_us <= 0 || result.latency_us <= result.deadline_us;
  if (pending.next_frame >= spec.frames) {
    result.last_output = std::move(pending.partial_output);
  }
  return result;
}

void ServeRuntime::dispatcher_loop(int index) {
  Device& dev = *devices_[static_cast<std::size_t>(index)];
  for (;;) {
    // The batch: a leader plus (with batch_max > 1) every same-key job
    // that was ready behind it, up to batch_max members.
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (stopping_ && dev.queue.empty()) return;
        if (dev.state == DevState::Draining && dev.queue.empty()) {
          // Drained: the re-homed jobs are gone, the gated (or last)
          // job finished its chunk. Sweep anything still live (zero on
          // a clean drain — the test invariant), release the parked
          // cache so a retired slot pins no device memory, and retire.
          const std::int64_t reclaimed = dev.cache ? dev.cache->reclaim_live() : 0;
          if (dev.cache) {
            dev.cache->trim();
            metrics_.set_allocator_stats(index, dev.cache->stats());
          }
          dev.state = DevState::Inactive;
          dev.drain_flag.store(false, std::memory_order_relaxed);
          dev.warming = false;
          dev.running_class.store(kIdleClass, std::memory_order_relaxed);
          metrics_.on_drain_complete(index);
          emit(obs::EventType::DrainComplete, /*job=*/0, index, /*attempt=*/0, reclaimed,
               dev.gpu->clock_us());
          drain_done_.notify_all();
        }
        if (!paused_ || stopping_) {
          // The best queued job whose retry backoff has elapsed: under
          // Fifo, the first in queue order (exactly the pre-SLO
          // behavior); under priority/edf, the policy-best of the whole
          // ready set.
          const auto now = std::chrono::steady_clock::now();
          auto ready = dev.queue.end();
          auto soonest = dev.queue.end();
          for (auto it = dev.queue.begin(); it != dev.queue.end(); ++it) {
            if (it->ready_time <= now) {
              if (ready == dev.queue.end() ||
                  schedules_before(options_.policy, sched_key(*it), sched_key(*ready))) {
                ready = it;
              }
              if (options_.policy == SchedPolicy::Fifo) break;
            } else if (soonest == dev.queue.end() || it->ready_time < soonest->ready_time) {
              soonest = it;
            }
          }
          if (ready != dev.queue.end()) {
            // Selection commits the running class and clears any stale
            // preempt request — the selected job is the policy-best, so
            // nothing still queued outranks it; later arrivals re-raise
            // the flag under this same mutex.
            dev.running_class.store(static_cast<int>(ready->spec.priority),
                                    std::memory_order_relaxed);
            dev.preempt_flag.store(false, std::memory_order_relaxed);
            batch.push_back(std::move(*ready));
            dev.queue.erase(ready);
            break;
          }
          if (soonest != dev.queue.end()) {
            // Everything queued is still backing off; sleep to the
            // earliest gate (or an earlier notify).
            work_ready_.wait_until(lock, soonest->ready_time);
            continue;
          }
          if (options_.work_stealing && !stopping_ && !paused_ &&
              dev.state == DevState::Active && steal_into_locked(index)) {
            continue;  // re-run selection over the stolen work
          }
        }
        work_ready_.wait(lock);
      }
      if (options_.batch_max > 1) {
        // Coalesce: sweep ready same-key jobs behind the leader, and
        // optionally hold the underfull batch open for late arrivals.
        // Members leave dev.queue but stay counted in total_queued_
        // (and the queue-depth gauge) until they actually dispatch.
        const std::string key = batch_key(batch.front().spec);
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(
                static_cast<std::int64_t>(options_.batch_wait_ms * 1000.0));
        for (;;) {
          const auto now = std::chrono::steady_clock::now();
          for (auto it = dev.queue.begin();
               it != dev.queue.end() &&
               batch.size() < static_cast<std::size_t>(options_.batch_max);) {
            if (it->ready_time <= now && batch_key(it->spec) == key) {
              batch.push_back(std::move(*it));
              it = dev.queue.erase(it);
            } else {
              ++it;
            }
          }
          if (batch.size() >= static_cast<std::size_t>(options_.batch_max) || stopping_ ||
              options_.batch_wait_ms <= 0 || now >= deadline) {
            break;
          }
          work_ready_.wait_until(lock, deadline);
        }
      }
      --total_queued_;  // the leader; followers decrement when they run
      metrics_.on_dispatch(index);
    }
    space_available_.notify_all();

    // Frame-boundary preemption: the gate polls the preempt flag that
    // submit/failover/steal raise (under mutex_) when a strictly
    // higher-class job lands on this device. The pipelines only consult
    // it for frames past the chunk's first, so every dispatch makes at
    // least one frame of progress — no livelock, and a low job delays a
    // high one by at most one frame. On an elastic fleet the same gate
    // also watches the drain flag, so a scale-down stops the running
    // job at its next frame boundary regardless of policy. Coalesced
    // batches are never gated: their members share one fused dispatch
    // round (a drain waits for the bounded batch to finish instead).
    apps::FrameGate gate;
    const bool preemptable = options_.preemption && options_.policy != SchedPolicy::Fifo;
    if (batch.size() == 1 && (preemptable || options_.max_devices > 0)) {
      gate = [&dev, preemptable](int) {
        if (dev.drain_flag.load(std::memory_order_relaxed)) return false;
        return !preemptable || !dev.preempt_flag.load(std::memory_order_relaxed);
      };
    }

    const bool coalesced = batch.size() >= 2;
    const std::uint64_t batch_id = coalesced ? batch.front().id : 0;
    if (coalesced) {
      metrics_.on_batch(index, static_cast<int>(batch.size()));
      emit(obs::EventType::BatchFormed, batch.front().id, index, /*attempt=*/0,
           static_cast<std::int64_t>(batch.size()), dev.gpu->clock_us());
    }

    for (std::size_t member = 0; member < batch.size(); ++member) {
      Pending& pending = batch[member];
      const bool last = member + 1 == batch.size();
      if (member > 0) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          --total_queued_;
        }
        metrics_.on_dispatch(index);
        space_available_.notify_all();
      }
      const double estimate = pending.estimate_us;
      emit(obs::EventType::JobDispatched, pending.id, index, pending.attempts, /*arg=*/0,
           dev.gpu->clock_us());

      JobResult result;
      std::exception_ptr error;
      bool device_fault = false;
      // Bracket the job so every interval the device profiles carries
      // its trace id + attempt (+ batch id when coalesced) — the key
      // the merged Chrome trace joins on.
      if (options_.trace_jobs) {
        dev.gpu->begin_job_trace(pending.id, static_cast<std::uint32_t>(pending.attempts),
                                 batch_id);
      }
      try {
        // Only the last member flushes the device: earlier members'
        // functional results are complete at enqueue, and the timeline
        // is ordered by buffer hazards either way — the whole batch is
        // one dispatch round on a warm driver, one barrier at the end.
        result = run_job(dev, index, pending, /*flush=*/last, gate);
      } catch (const fault::DeviceFault&) {
        device_fault = true;
        error = std::current_exception();
      } catch (...) {
        error = std::current_exception();
      }
      if (options_.trace_jobs) dev.gpu->end_job_trace();

      if (error == nullptr && pending.next_frame < pending.spec.frames) {
        // Stopped at a frame boundary — by a preempt request, or by the
        // drain flag of a scale-down. Either way the chunk flushed, so
        // the device is clean and the partial state in Pending
        // (next_frame, accumulated ops and partial output) resumes
        // bit-exactly on whichever device the re-enqueue lands on — the
        // same motion as a failover, minus the fault.
        const bool draining = dev.drain_flag.load(std::memory_order_relaxed);
        if (!draining) {
          ++pending.preemptions;
          emit(obs::EventType::JobPreempted, pending.id, index, pending.attempts,
               pending.next_frame, dev.gpu->clock_us());
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          const Priority prio = pending.spec.priority;
          pending.ready_time = std::chrono::steady_clock::now();
          const std::size_t target = pick_device_locked(/*exclude=*/-1);
          dev.backlog_estimate_us -= estimate;
          devices_[target]->backlog_estimate_us += estimate;
          // A drain displacement is a re-home, not a preemption: the
          // job wasn't outranked, its device is leaving.
          if (draining) {
            metrics_.on_rehomed(index, static_cast<int>(target), /*queued=*/false);
          } else {
            metrics_.on_preempted(index, static_cast<int>(target));
          }
          devices_[target]->queue.push_back(std::move(pending));
          ++total_queued_;
          signal_preempt_locked(target, prio);
        }
        // The job stays inflight; the displacing high-class job is
        // already queued here and wins the next selection.
        work_ready_.notify_all();
        continue;
      }

      if (error == nullptr) {
        // Record before handing the result off through the promise.
        metrics_.on_complete(index, result, dev.gpu->clock_us());
        if (dev.cache) metrics_.set_allocator_stats(index, dev.cache->stats());
        {
          std::lock_guard<std::mutex> lock(mutex_);
          metrics_.set_elapsed_real_us(
              us_between(serve_start_, std::chrono::steady_clock::now()));
        }
        if (!result.slo_met) {
          emit(obs::EventType::DeadlineMiss, pending.id, index, pending.attempts,
               static_cast<std::int64_t>(
                   std::llround(result.latency_us - result.deadline_us)),
               dev.gpu->clock_us());
        }
        emit(obs::EventType::JobCompleted, pending.id, index, pending.attempts,
             pending.spec.frames, dev.gpu->clock_us());
        pending.promise.set_value(std::move(result));
        finish_job(dev, estimate);
        continue;
      }

      if (device_fault) {
        // The frame loop died mid-flight. Its RAII buffer owners unwound
        // back into the caching allocator already; sweep whatever is
        // still live so the device starts the next job leak-free. The
        // remaining batch members never ran (members execute strictly in
        // order), so they simply dispatch next — on this device, like
        // any job already committed to its queue.
        const std::int64_t reclaimed = dev.cache ? dev.cache->reclaim_live() : 0;
        metrics_.on_device_fault(index, reclaimed);
        if (dev.cache) metrics_.set_allocator_stats(index, dev.cache->stats());
        // The injector's record of where it fired beats the device
        // clock: the faulted operation never ran, so the clock is the
        // time of the last *successful* op.
        const double fault_sim_us = dev.injector != nullptr
                                        ? dev.injector->last_fault_clock_us()
                                        : dev.gpu->clock_us();
        emit(obs::EventType::DeviceFault, pending.id, index, pending.attempts, reclaimed,
             fault_sim_us);

        bool retried = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (!dev.degraded) {
            dev.degraded = true;
            dev.degraded_since = std::chrono::steady_clock::now();
            metrics_.on_degraded(index);
            emit(obs::EventType::DeviceDegraded, pending.id, index, pending.attempts,
                 /*arg=*/0, dev.gpu->clock_us());
          }
          if (pending.attempts < options_.max_retries) {
            ++pending.attempts;
            const double backoff_ms =
                std::min(options_.retry_backoff_base_ms *
                             static_cast<double>(std::int64_t{1} << (pending.attempts - 1)),
                         options_.retry_backoff_cap_ms);
            pending.ready_time =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(static_cast<std::int64_t>(backoff_ms * 1000.0));
            const std::size_t target = pick_device_locked(/*exclude=*/index);
            // `device` is the faulted source; `attempt` is the hop the
            // retry will run as — together with arg (the target device)
            // this is exactly the flow arrow of the merged trace.
            emit(obs::EventType::Failover, pending.id, index, pending.attempts,
                 static_cast<std::int64_t>(target), dev.gpu->clock_us());
            const Priority prio = pending.spec.priority;
            devices_[target]->queue.push_back(std::move(pending));
            devices_[target]->backlog_estimate_us += estimate;
            dev.backlog_estimate_us -= estimate;
            ++total_queued_;
            metrics_.on_failover(index, static_cast<int>(target));
            signal_preempt_locked(target, prio);
            retried = true;
          }
        }
        if (retried) {
          // The job stays inflight; its new dispatcher takes over.
          work_ready_.notify_all();
          continue;
        }
      }

      // Permanent failure: retry budget exhausted, or a non-fault error
      // (bad spec caught late, driver bug) that a retry would only
      // repeat.
      emit(obs::EventType::RetryExhausted, pending.id, index, pending.attempts,
           /*arg=*/pending.attempts + 1, dev.gpu->clock_us());
      pending.promise.set_exception(error);
      metrics_.on_failed(index);
      finish_job(dev, estimate);
    }
    // Park: an idle device never needs a preempt request.
    dev.running_class.store(kIdleClass, std::memory_order_relaxed);
  }
}

}  // namespace saclo::serve
