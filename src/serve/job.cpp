#include "serve/job.hpp"

#include "core/fmt.hpp"
#include "gpu/cost_model.hpp"

namespace saclo::serve {

const char* route_name(Route route) {
  switch (route) {
    case Route::SacNongeneric:
      return "sacng";
    case Route::SacGeneric:
      return "sacg";
    case Route::Gaspard:
      return "gaspard";
  }
  return "?";
}

Route parse_route(const std::string& name) {
  if (name == "sacng" || name == "SacNongeneric") return Route::SacNongeneric;
  if (name == "sacg" || name == "SacGeneric") return Route::SacGeneric;
  if (name == "gaspard" || name == "Gaspard") return Route::Gaspard;
  throw ServeError(cat("unknown route '", name, "' (expected sacng, sacg or gaspard)"));
}

void JobSpec::validate() const {
  config.validate();
  if (frames <= 0) throw ServeError(cat("job frames must be positive, got ", frames));
  if (channels != 1 && channels != 3) {
    throw ServeError(cat("job channels must be 1 or 3, got ", channels));
  }
  if (exec_frames > frames) {
    throw ServeError(cat("exec_frames ", exec_frames, " exceeds frames ", frames));
  }
  if (opt_level < 0 || opt_level > 2) {
    throw ServeError(cat("opt_level must be 0, 1 or 2, got ", opt_level));
  }
  if (tenant.empty()) throw ServeError("job tenant must not be empty");
  if (deadline_ms < 0) {
    throw ServeError(cat("deadline_ms must be >= 0, got ", deadline_ms));
  }
}

std::string driver_key(Route route, const apps::DownscalerConfig& config) {
  return cat(route_name(route), ":", config.height, "x", config.width, ":", config.h.in_pattern,
             "/", config.h.paving, "/", config.h.tile(), ":", config.v.in_pattern, "/",
             config.v.paving, "/", config.v.tile());
}

std::string batch_key(const JobSpec& spec) {
  return cat(driver_key(spec.route, spec.config), ":o", spec.opt_level, ":ch", spec.channels);
}

double estimate_job_us(const JobSpec& spec, const gpu::DeviceSpec& device) {
  const apps::DownscalerConfig& cfg = spec.config;
  // Per frame-channel: upload the frame, H kernel over the paving
  // repetition, V kernel (column-strided reads), download the result.
  const double h2d =
      gpu::transfer_time_us(device, cfg.frame_shape().elements() * 4, gpu::Dir::HostToDevice);
  const double d2h =
      gpu::transfer_time_us(device, cfg.out_shape().elements() * 4, gpu::Dir::DeviceToHost);

  gpu::KernelCost h_cost;
  h_cost.global_loads_per_thread = static_cast<double>(cfg.h.in_pattern);
  h_cost.global_stores_per_thread = static_cast<double>(cfg.h.tile());
  h_cost.flops_per_thread = 2.0 * static_cast<double>(cfg.h.window * cfg.h.tile());
  h_cost.warp_access_stride = cfg.h.paving;  // pattern-strided row reads
  const double h_kernel =
      gpu::kernel_time_us(device, cfg.h_repetition().elements(), h_cost);

  gpu::KernelCost v_cost;
  v_cost.global_loads_per_thread = static_cast<double>(cfg.v.in_pattern);
  v_cost.global_stores_per_thread = static_cast<double>(cfg.v.tile());
  v_cost.flops_per_thread = 2.0 * static_cast<double>(cfg.v.window * cfg.v.tile());
  v_cost.warp_access_stride = cfg.mid_width();  // column reads
  const double v_kernel =
      gpu::kernel_time_us(device, cfg.v_repetition().elements(), v_cost);

  double per_channel = h2d + d2h + h_kernel + v_kernel;
  if (spec.route == Route::SacGeneric) {
    // The generic output tiler adds a device->host->device round trip
    // of the intermediate to the critical path.
    per_channel += gpu::transfer_time_us(device, cfg.mid_shape().elements() * 4,
                                         gpu::Dir::DeviceToHost) +
                   gpu::transfer_time_us(device, cfg.mid_shape().elements() * 4,
                                         gpu::Dir::HostToDevice);
  }
  return per_channel * spec.channels * spec.frames;
}

JobResult reference_run(const JobSpec& spec, const gpu::DeviceSpec& device, unsigned workers,
                        gpu::BackendKind backend) {
  spec.validate();
  JobResult result;
  result.route = spec.route;
  result.frames = spec.frames;
  const int exec = spec.effective_exec_frames();
  if (spec.route == Route::Gaspard) {
    apps::GaspardDownscaler::Options opts;
    opts.device = device;
    opts.workers = workers;
    opts.backend = backend;
    opts.rgb = spec.channels == 3;
    opts.async_streams = true;
    opts.opt_level = spec.opt_level;
    apps::GaspardDownscaler driver(spec.config, opts);
    auto r = driver.run(spec.frames, exec);
    result.last_output = r.last_output;
    result.ops += r.h;
    result.ops += r.v;
    result.sim_wall_us = r.wall_us;
  } else {
    apps::SacDownscaler::Options opts;
    opts.generic = spec.route == Route::SacGeneric;
    opts.device = device;
    opts.workers = workers;
    opts.backend = backend;
    opts.async_streams = true;
    apps::SacDownscaler driver(spec.config, opts);
    auto r = driver.run_cuda_chain(spec.frames, spec.channels, exec);
    result.last_output = r.last_output;
    result.ops += r.h;
    result.ops += r.v;
    result.sim_wall_us = r.wall_us;
  }
  return result;
}

}  // namespace saclo::serve
