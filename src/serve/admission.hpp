#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "serve/job.hpp"

namespace saclo::serve {

/// Why the runtime shed a submission instead of queueing it.
enum class ShedReason : std::uint8_t {
  RateLimited,  ///< the tenant's token bucket was empty
  QueueFull,    ///< shed_on_full and the fleet backlog was at capacity
};

const char* shed_reason_name(ShedReason reason);

/// The typed status a shed job's future carries: shedding is an
/// explicit, attributable outcome — the future resolves immediately
/// with this exception, it never hangs and never aliases a device
/// failure.
class ShedError : public ServeError {
 public:
  ShedError(ShedReason reason, const std::string& tenant);
  ShedReason reason() const { return reason_; }
  const std::string& tenant() const { return tenant_; }

 private:
  ShedReason reason_;
  std::string tenant_;
};

/// Classic token bucket: `rate` tokens per second accrue continuously
/// up to `burst`; each admitted job takes one. The bucket starts full,
/// so a tenant's first `burst` jobs always pass. Not thread-safe — the
/// scheduler calls it under its own mutex.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst);

  /// Takes one token if available at `now`; false = shed.
  bool try_take(std::chrono::steady_clock::time_point now);
  double tokens() const { return tokens_; }

 private:
  double rate_per_s_;
  double burst_;
  double tokens_;
  bool primed_ = false;
  std::chrono::steady_clock::time_point last_{};
};

/// Per-tenant admission control: one token bucket per tenant id,
/// created on first sight with the fleet-wide rate/burst configuration.
/// Not thread-safe for the same reason as TokenBucket.
class AdmissionController {
 public:
  AdmissionController(double rate_per_s, double burst);

  /// Whether `tenant` may submit one job at `now`.
  bool admit(const std::string& tenant, std::chrono::steady_clock::time_point now);

 private:
  double rate_per_s_;
  double burst_;
  std::map<std::string, TokenBucket> buckets_;
};

}  // namespace saclo::serve
