#include "serve/admission.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace saclo::serve {

const char* shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::RateLimited:
      return "rate_limited";
    case ShedReason::QueueFull:
      return "queue_full";
  }
  return "?";
}

ShedError::ShedError(ShedReason reason, const std::string& tenant)
    : ServeError(cat("job shed (", shed_reason_name(reason), ") for tenant '", tenant, "'")),
      reason_(reason),
      tenant_(tenant) {}

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s), burst_(std::max(1.0, burst)), tokens_(burst_) {}

bool TokenBucket::try_take(std::chrono::steady_clock::time_point now) {
  if (!primed_) {
    primed_ = true;
    last_ = now;
  }
  const double elapsed_s = std::chrono::duration<double>(now - last_).count();
  if (elapsed_s > 0) {
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_s_);
    last_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::AdmissionController(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s), burst_(burst) {}

bool AdmissionController::admit(const std::string& tenant,
                                std::chrono::steady_clock::time_point now) {
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_.emplace(tenant, TokenBucket(rate_per_s_, burst_)).first;
  }
  return it->second.try_take(now);
}

}  // namespace saclo::serve
