#include "serve/alerting.hpp"

#include "core/fmt.hpp"
#include "serve/scheduler.hpp"

namespace saclo::serve {

AlertMonitor::AlertMonitor(ServeRuntime& runtime, const AlertMonitorOptions& options)
    : runtime_(runtime),
      options_(options),
      start_(std::chrono::steady_clock::now()),
      engine_(options.policy) {
  if (obs::TelemetryServer* server = runtime_.telemetry()) {
    server->handle("/alerts", [this](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "application/json", alerts_json()};
    });
  }
  if (options_.interval_ms > 0) {
    thread_ = std::thread([this] { loop(); });
  }
}

AlertMonitor::~AlertMonitor() { stop(); }

void AlertMonitor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // The /alerts handler captures `this`; replace it so a scrape after
  // the monitor is gone gets an honest answer instead of a dangling
  // callback. (Owners destroy the monitor before the runtime.)
  if (obs::TelemetryServer* server = runtime_.telemetry()) {
    server->handle("/alerts", [](const obs::HttpRequest&) {
      return obs::HttpResponse{503, "text/plain; charset=utf-8", "alert monitor stopped\n"};
    });
  }
}

void AlertMonitor::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    const auto period =
        std::chrono::duration<double, std::milli>(options_.interval_ms);
    stop_cv_.wait_for(lock, period, [&] { return stop_requested_; });
    if (stop_requested_) return;
    const double now_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
            .count();
    const std::vector<obs::AlertTransition> fired = evaluate_locked(now_ms);
    const std::size_t active_count = engine_.active_count();
    // Forward outside mutex_: the sink only appends wire events and
    // sets a gauge, but keeping lock scopes disjoint means a /alerts
    // scrape can never queue behind the runtime's own locks.
    lock.unlock();
    runtime_.on_alert_transitions(fired, active_count);
    lock.lock();
  }
}

std::vector<obs::AlertTransition> AlertMonitor::evaluate_locked(double now_ms) {
  const FleetMetrics::Snapshot snap = runtime_.metrics().snapshot();
  obs::AlertSample sample;
  sample.now_ms = now_ms;
  // Saturation measures the same backlog the runtime's backpressure
  // trips on: accepted-but-unfinished jobs against queue_capacity.
  sample.queued = runtime_.inflight_jobs();
  sample.queue_capacity = runtime_.queue_capacity();
  sample.degraded_devices = snap.degraded_devices;
  sample.active_devices = snap.active_devices;
  sample.tenants.reserve(snap.tenants.size());
  for (const auto& t : snap.tenants) {
    sample.tenants.push_back(obs::TenantCounters{t.tenant, t.slo_jobs, t.slo_met});
  }
  std::vector<obs::AlertTransition> fired = engine_.step(sample);
  for (const obs::AlertTransition& t : fired) transitions_.push_back(t);
  return fired;
}

std::vector<obs::AlertTransition> AlertMonitor::sample_now() {
  std::vector<obs::AlertTransition> fired;
  std::size_t active_count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const double now_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
            .count();
    fired = evaluate_locked(now_ms);
    active_count = engine_.active_count();
  }
  runtime_.on_alert_transitions(fired, active_count);
  return fired;
}

std::vector<obs::ActiveAlert> AlertMonitor::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.active();
}

std::vector<obs::AlertTransition> AlertMonitor::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

std::string AlertMonitor::transitions_jsonl() const {
  const std::vector<obs::AlertTransition> all = transitions();
  std::string out;
  for (const obs::AlertTransition& t : all) {
    out += obs::alert_transition_json(t);
    out += "\n";
  }
  return out;
}

std::string AlertMonitor::alerts_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"active\":[";
  const std::vector<obs::ActiveAlert> firing = engine_.active();
  for (std::size_t i = 0; i < firing.size(); ++i) {
    if (i > 0) out += ",";
    const obs::ActiveAlert& a = firing[i];
    // Subjects are tenant ids from the CLI; reuse the transition-log
    // escaping by rendering through a transition-shaped record.
    obs::AlertTransition as_transition{a.kind, true, a.subject, a.since_ms, a.value};
    out += obs::alert_transition_json(as_transition);
  }
  out += cat("],\"transitions\":", transitions_.size(), "}");
  return out;
}

}  // namespace saclo::serve
