#include "serve/traffic.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <random>
#include <thread>

#include "core/fmt.hpp"
#include "serve/admission.hpp"
#include "serve/scheduler.hpp"

namespace saclo::serve {

namespace {

// ---------------------------------------------------------------------------
// Deterministic sampling. std::*_distribution output is
// implementation-defined, so a trace generated on libstdc++ would not
// match one generated on libc++ — every draw here is hand-rolled
// inverse-transform from raw mt19937_64 output (whose sequence IS
// pinned by the standard).

/// Uniform in [0, 1): the top 53 bits of one engine draw.
double u01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Exponential inter-arrival gap with the given rate (events per ms).
double exp_gap_ms(std::mt19937_64& rng, double rate_per_ms) {
  return -std::log(1.0 - u01(rng)) / rate_per_ms;
}

/// Geometric (support 1, 2, ...) with the given mean >= 1.
std::int64_t geometric_size(std::mt19937_64& rng, double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;  // success probability
  const double u = u01(rng);
  return 1 + static_cast<std::int64_t>(std::log(1.0 - u) / std::log(1.0 - p));
}

/// Draws a class index by weight.
std::size_t draw_class(std::mt19937_64& rng, const std::vector<TrafficClass>& classes,
                       double total_weight) {
  const double r = u01(rng) * total_weight;
  double cum = 0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    cum += classes[i].weight;
    if (r < cum) return i;
  }
  return classes.size() - 1;
}

/// The sinusoidal diurnal rate at trace time t (events per ms).
double rate_at_ms(const TrafficSpec& spec, double t_ms) {
  const double base = spec.base_rate_hz / 1000.0;
  return base * (1.0 + spec.diurnal_amplitude *
                           std::sin(2.0 * 3.14159265358979323846 * t_ms /
                                    spec.diurnal_period_ms));
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for trace files. The test-support mini_json lives
// under tests/ and src must not reach into it, so the traffic module
// carries its own ~100-line recursive-descent parser for exactly the
// subset to_json() emits (objects, arrays, strings, numbers).

struct JsonValue {
  enum class Kind { Null, Number, String, Array, Object } kind = Kind::Null;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw TrafficError(cat("trace JSON: missing key '", key, "'"));
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
  double number(const std::string& key) const {
    const JsonValue& v = at(key);
    if (v.kind != Kind::Number) {
      throw TrafficError(cat("trace JSON: key '", key, "' is not a number"));
    }
    return v.num;
  }
  const std::string& string(const std::string& key) const {
    const JsonValue& v = at(key);
    if (v.kind != Kind::String) {
      throw TrafficError(cat("trace JSON: key '", key, "' is not a string"));
    }
    return v.str;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw TrafficError(cat("trace JSON: ", what, " at offset ", pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(cat("expected '", c, "', found '", text_[pos_], "'"));
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      default:
        return number_value();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.obj.emplace(key.str, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        c = esc == 'n' ? '\n' : esc;  // to_json only emits \" \\ \n
      }
      v.str += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue number_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail(cat("unexpected character '", text_[start], "'"));
    try {
      v.num = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail(cat("malformed number '", text_.substr(start, pos_ - start), "'"));
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Canonical number rendering: integers without decimals (seed, frame
/// counts), everything else with four — enough that a parse/print
/// round trip is the identity on to_json() output.
std::string num(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return cat(static_cast<std::int64_t>(v));
  }
  return fixed(v, 4);
}

std::string class_json(const TrafficClass& c) {
  return cat("{\"name\":\"", json_escape(c.name), "\",\"route\":\"", route_name(c.route),
             "\",\"height\":", c.height, ",\"width\":", c.width, ",\"frames\":", c.frames,
             ",\"channels\":", c.channels, ",\"exec_frames\":", c.exec_frames,
             ",\"opt_level\":", c.opt_level, ",\"tenant\":\"", json_escape(c.tenant),
             "\",\"priority\":\"", priority_name(c.priority),
             "\",\"deadline_ms\":", num(c.deadline_ms), ",\"weight\":", num(c.weight), "}");
}

TrafficClass class_from_json(const JsonValue& v) {
  TrafficClass c;
  c.name = v.string("name");
  c.route = parse_route(v.string("route"));
  c.height = static_cast<int>(v.number("height"));
  c.width = static_cast<int>(v.number("width"));
  c.frames = static_cast<int>(v.number("frames"));
  c.channels = static_cast<int>(v.number("channels"));
  c.exec_frames = static_cast<int>(v.number("exec_frames"));
  c.opt_level = static_cast<int>(v.number("opt_level"));
  c.tenant = v.string("tenant");
  c.priority = parse_priority(v.string("priority"));
  c.deadline_ms = v.number("deadline_ms");
  c.weight = v.number("weight");
  c.validate();
  return c;
}

}  // namespace

void TrafficClass::validate() const {
  if (name.empty()) throw TrafficError("traffic class name must not be empty");
  if (weight <= 0) {
    throw TrafficError(cat("traffic class '", name, "' weight must be positive, got ", weight));
  }
  job().validate();  // geometry, frames, channels, tenant, deadline
}

JobSpec TrafficClass::job() const {
  JobSpec spec;
  spec.route = route;
  spec.config = apps::DownscalerConfig::tiny();
  spec.config.height = height;
  spec.config.width = width;
  spec.frames = frames;
  spec.channels = channels;
  spec.exec_frames = exec_frames;
  spec.opt_level = opt_level;
  spec.tenant = tenant;
  spec.priority = priority;
  spec.deadline_ms = deadline_ms;
  return spec;
}

void TrafficSpec::validate() const {
  if (duration_ms <= 0) {
    throw TrafficError(cat("traffic duration_ms must be positive, got ", duration_ms));
  }
  if (base_rate_hz <= 0) {
    throw TrafficError(cat("traffic base_rate_hz must be positive, got ", base_rate_hz));
  }
  if (diurnal_amplitude < 0 || diurnal_amplitude >= 1) {
    throw TrafficError(
        cat("diurnal_amplitude must be in [0, 1), got ", diurnal_amplitude));
  }
  if (diurnal_period_ms <= 0) {
    throw TrafficError(cat("diurnal_period_ms must be positive, got ", diurnal_period_ms));
  }
  if (burst_rate_hz < 0) {
    throw TrafficError(cat("burst_rate_hz must be >= 0, got ", burst_rate_hz));
  }
  if (burst_rate_hz > 0 && burst_size_mean < 1) {
    throw TrafficError(cat("burst_size_mean must be >= 1, got ", burst_size_mean));
  }
  if (burst_rate_hz > 0 && burst_width_ms <= 0) {
    throw TrafficError(cat("burst_width_ms must be positive, got ", burst_width_ms));
  }
  if (classes.empty()) throw TrafficError("traffic spec needs at least one class");
  for (const TrafficClass& c : classes) c.validate();
}

TrafficSpec TrafficSpec::ci_default() {
  TrafficSpec spec;
  spec.seed = 42;
  spec.duration_ms = 1000.0;
  spec.base_rate_hz = 60.0;
  spec.diurnal_amplitude = 0.6;
  spec.diurnal_period_ms = 400.0;
  spec.burst_rate_hz = 3.0;
  spec.burst_size_mean = 6.0;
  spec.burst_width_ms = 4.0;

  TrafficClass gold;
  gold.name = "gold-tiny";
  gold.route = Route::SacNongeneric;
  gold.height = 18;
  gold.width = 32;
  gold.frames = 4;
  gold.tenant = "gold";
  gold.priority = Priority::High;
  gold.deadline_ms = 400.0;
  gold.weight = 4.0;

  TrafficClass gold_wide;
  gold_wide.name = "gold-wide";
  gold_wide.route = Route::SacGeneric;
  gold_wide.height = 36;
  gold_wide.width = 64;
  gold_wide.frames = 3;
  gold_wide.tenant = "gold";
  gold_wide.priority = Priority::High;
  gold_wide.deadline_ms = 600.0;
  gold_wide.weight = 2.0;

  TrafficClass silver;
  silver.name = "silver-gaspard";
  silver.route = Route::Gaspard;
  silver.height = 18;
  silver.width = 32;
  silver.frames = 4;
  silver.opt_level = 2;
  silver.tenant = "silver";
  silver.priority = Priority::Normal;
  silver.deadline_ms = 900.0;
  silver.weight = 3.0;

  TrafficClass bronze;
  bronze.name = "bronze-batch";
  bronze.route = Route::SacNongeneric;
  bronze.height = 72;
  bronze.width = 128;
  bronze.frames = 2;
  bronze.tenant = "bronze";
  bronze.priority = Priority::Low;
  bronze.deadline_ms = 0.0;  // best effort
  bronze.weight = 2.0;

  spec.classes = {gold, gold_wide, silver, bronze};
  return spec;
}

TrafficSpec TrafficSpec::parse(const std::string& text) {
  TrafficSpec spec = ci_default();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string field = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw TrafficError(cat("traffic-spec field '", field, "' is not key=value"));
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    try {
      if (key == "seed") {
        spec.seed = static_cast<std::uint64_t>(std::stoull(value));
      } else if (key == "duration_ms") {
        spec.duration_ms = std::stod(value);
      } else if (key == "base_rate_hz") {
        spec.base_rate_hz = std::stod(value);
      } else if (key == "diurnal_amplitude") {
        spec.diurnal_amplitude = std::stod(value);
      } else if (key == "diurnal_period_ms") {
        spec.diurnal_period_ms = std::stod(value);
      } else if (key == "burst_rate_hz") {
        spec.burst_rate_hz = std::stod(value);
      } else if (key == "burst_size_mean") {
        spec.burst_size_mean = std::stod(value);
      } else if (key == "burst_width_ms") {
        spec.burst_width_ms = std::stod(value);
      } else {
        throw TrafficError(cat("unknown traffic-spec field '", key, "' in '", text, "'"));
      }
    } catch (const std::invalid_argument&) {
      throw TrafficError(cat("malformed value in traffic-spec field '", field, "'"));
    } catch (const std::out_of_range&) {
      throw TrafficError(cat("out-of-range value in traffic-spec field '", field, "'"));
    }
  }
  spec.validate();
  return spec;
}

TrafficTrace generate_trace(const TrafficSpec& spec) {
  spec.validate();
  std::mt19937_64 rng(spec.seed);
  double total_weight = 0;
  for (const TrafficClass& c : spec.classes) total_weight += c.weight;

  TrafficTrace trace;
  trace.spec = spec;

  const auto push = [&](double t_ms) {
    const TrafficClass& cls = spec.classes[draw_class(rng, spec.classes, total_weight)];
    TrafficArrival arrival;
    arrival.t_ms = t_ms;
    arrival.class_name = cls.name;
    arrival.spec = cls.job();
    trace.arrivals.push_back(std::move(arrival));
  };

  // Diurnal base load: nonhomogeneous Poisson via thinning. Candidates
  // arrive at the peak rate; each survives with probability
  // rate(t) / rate_max, which yields exactly the sinusoidal intensity.
  const double rate_max = spec.base_rate_hz / 1000.0 * (1.0 + spec.diurnal_amplitude);
  double t = 0;
  while (true) {
    t += exp_gap_ms(rng, rate_max);
    if (t >= spec.duration_ms) break;
    const double accept = u01(rng);
    if (accept * rate_max <= rate_at_ms(spec, t)) push(t);
  }

  // Burst overlay: bursts themselves are a homogeneous Poisson process;
  // each drops a geometric clump spread uniformly over its width.
  if (spec.burst_rate_hz > 0) {
    double bt = 0;
    while (true) {
      bt += exp_gap_ms(rng, spec.burst_rate_hz / 1000.0);
      if (bt >= spec.duration_ms) break;
      const std::int64_t size = geometric_size(rng, spec.burst_size_mean);
      for (std::int64_t i = 0; i < size; ++i) {
        const double offset = u01(rng) * spec.burst_width_ms;
        if (bt + offset < spec.duration_ms) push(bt + offset);
      }
    }
  }

  std::stable_sort(trace.arrivals.begin(), trace.arrivals.end(),
                   [](const TrafficArrival& a, const TrafficArrival& b) {
                     return a.t_ms < b.t_ms;
                   });
  return trace;
}

std::string TrafficTrace::to_json() const {
  std::string out = cat(
      "{\"spec\":{\"seed\":", spec.seed, ",\"duration_ms\":", num(spec.duration_ms),
      ",\"base_rate_hz\":", num(spec.base_rate_hz),
      ",\"diurnal_amplitude\":", num(spec.diurnal_amplitude),
      ",\"diurnal_period_ms\":", num(spec.diurnal_period_ms),
      ",\"burst_rate_hz\":", num(spec.burst_rate_hz),
      ",\"burst_size_mean\":", num(spec.burst_size_mean),
      ",\"burst_width_ms\":", num(spec.burst_width_ms), ",\"classes\":[");
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    if (i != 0) out += ",";
    out += class_json(spec.classes[i]);
  }
  out += "]},\"arrivals\":[";
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const TrafficArrival& a = arrivals[i];
    if (i != 0) out += ",";
    out += cat("\n{\"t_ms\":", fixed(a.t_ms, 4), ",\"class\":\"", json_escape(a.class_name),
               "\"}");
  }
  out += "\n]}";
  return out;
}

TrafficTrace TrafficTrace::from_json(const std::string& text) {
  JsonValue root = JsonReader(text).parse();
  if (root.kind != JsonValue::Kind::Object) {
    throw TrafficError("trace JSON: document is not an object");
  }
  const JsonValue& spec_v = root.at("spec");
  if (spec_v.kind != JsonValue::Kind::Object) {
    throw TrafficError("trace JSON: 'spec' is not an object");
  }

  TrafficTrace trace;
  trace.spec.seed = static_cast<std::uint64_t>(spec_v.number("seed"));
  trace.spec.duration_ms = spec_v.number("duration_ms");
  trace.spec.base_rate_hz = spec_v.number("base_rate_hz");
  trace.spec.diurnal_amplitude = spec_v.number("diurnal_amplitude");
  trace.spec.diurnal_period_ms = spec_v.number("diurnal_period_ms");
  trace.spec.burst_rate_hz = spec_v.number("burst_rate_hz");
  trace.spec.burst_size_mean = spec_v.number("burst_size_mean");
  trace.spec.burst_width_ms = spec_v.number("burst_width_ms");
  const JsonValue& classes_v = spec_v.at("classes");
  if (classes_v.kind != JsonValue::Kind::Array) {
    throw TrafficError("trace JSON: 'classes' is not an array");
  }
  trace.spec.classes.clear();
  std::map<std::string, const TrafficClass*> by_name;
  for (const JsonValue& cv : classes_v.arr) {
    trace.spec.classes.push_back(class_from_json(cv));
  }
  trace.spec.validate();
  for (const TrafficClass& c : trace.spec.classes) {
    if (!by_name.emplace(c.name, &c).second) {
      throw TrafficError(cat("trace JSON: duplicate class name '", c.name, "'"));
    }
  }

  const JsonValue& arrivals_v = root.at("arrivals");
  if (arrivals_v.kind != JsonValue::Kind::Array) {
    throw TrafficError("trace JSON: 'arrivals' is not an array");
  }
  double prev_t = 0;
  for (const JsonValue& av : arrivals_v.arr) {
    if (av.kind != JsonValue::Kind::Object) {
      throw TrafficError("trace JSON: arrival is not an object");
    }
    TrafficArrival arrival;
    arrival.t_ms = av.number("t_ms");
    arrival.class_name = av.string("class");
    const auto it = by_name.find(arrival.class_name);
    if (it == by_name.end()) {
      throw TrafficError(cat("trace JSON: arrival references unknown class '",
                             arrival.class_name, "'"));
    }
    if (arrival.t_ms < prev_t) {
      throw TrafficError(cat("trace JSON: arrivals not sorted at t_ms ", arrival.t_ms));
    }
    prev_t = arrival.t_ms;
    arrival.spec = it->second->job();
    trace.arrivals.push_back(std::move(arrival));
  }
  return trace;
}

ReplayStats replay_trace(ServeRuntime& runtime, const TrafficTrace& trace, double speed) {
  if (speed <= 0) throw TrafficError(cat("replay speed must be positive, got ", speed));

  // The same output fingerprint the CLI prints: fold route, frame count
  // and every output element per completed job, in submission order —
  // a function of the job mix alone.
  std::uint64_t checksum = 1469598103934665603ull;  // FNV-1a offset basis
  const auto fold = [&checksum](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      checksum ^= (v >> (8 * b)) & 0xffu;
      checksum *= 1099511628211ull;
    }
  };

  ReplayStats stats;
  std::vector<std::future<JobResult>> futures;
  futures.reserve(trace.arrivals.size());

  const auto start = std::chrono::steady_clock::now();
  for (const TrafficArrival& arrival : trace.arrivals) {
    const auto due =
        start + std::chrono::microseconds(
                    static_cast<std::int64_t>(arrival.t_ms * 1000.0 / speed));
    std::this_thread::sleep_until(due);
    ++stats.submitted;
    auto fut = runtime.try_submit(arrival.spec);
    if (fut) {
      futures.push_back(std::move(*fut));
    } else {
      // Backlog full (without shed_on_full the caller is the shedder) —
      // drop the arrival instead of distorting the schedule by blocking.
      ++stats.shed;
    }
  }

  for (auto& fut : futures) {
    try {
      const JobResult r = fut.get();
      ++stats.completed;
      fold(static_cast<std::uint64_t>(r.route));
      fold(static_cast<std::uint64_t>(r.frames));
      fold(static_cast<std::uint64_t>(r.last_output.elements()));
      for (std::int64_t i = 0; i < r.last_output.elements(); ++i) {
        fold(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.last_output[i])));
      }
    } catch (const ShedError&) {
      ++stats.shed;
    } catch (const std::exception&) {
      ++stats.failed;
    }
  }
  stats.checksum = checksum;
  stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace saclo::serve
