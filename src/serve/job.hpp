#pragma once

#include <cstdint>
#include <string>

#include "apps/downscaler/config.hpp"
#include "apps/downscaler/pipelines.hpp"
#include "core/error.hpp"
#include "gpu/backend_kind.hpp"
#include "gpu/device.hpp"
#include "serve/policy.hpp"

namespace saclo::serve {

/// Raised on malformed job specs or misuse of the serving runtime.
class ServeError : public Error {
 public:
  using Error::Error;
};

/// Which compiled pipeline a job runs — the three routes the paper
/// compares, now selectable per request.
enum class Route {
  SacNongeneric,  ///< SAC-CUDA, non-generic output tilers (fast path)
  SacGeneric,     ///< SAC-CUDA, generic (for-loop) output tilers
  Gaspard,        ///< GASPARD2-style OpenCL chain
};

const char* route_name(Route route);
/// Parses "sacng" / "sacg" / "gaspard" (also accepts the long names
/// above, case-sensitive); throws ServeError on anything else.
Route parse_route(const std::string& name);

/// One serving request: a video of `frames` frames pushed through one
/// route. exec_frames < 0 (the default) executes every frame
/// functionally — a real serving job; smaller values validate a prefix
/// and accrue simulated time for the rest (the benchmark idiom).
struct JobSpec {
  Route route = Route::SacNongeneric;
  apps::DownscalerConfig config = apps::DownscalerConfig::tiny();
  int frames = 4;
  int channels = 3;  ///< SaC routes: channels per frame; Gaspard: 3 = RGB model, 1 = mono
  int exec_frames = -1;
  /// Transformation-optimizer level for the Gaspard route (see
  /// opt/search.hpp): 0 = unfused, 1 = fusion, 2 = fusion + channel
  /// merge. Bit-exact across levels; ignored by the SaC routes.
  int opt_level = 0;

  // -- multi-tenant SLO scheduling --------------------------------------------
  /// Tenant the job bills to: admission control rate-limits per tenant,
  /// and FleetMetrics reports SLO attainment per tenant.
  std::string tenant = "default";
  /// Priority class the policy-aware dispatchers order by.
  Priority priority = Priority::Normal;
  /// Relative SLO deadline in real milliseconds from submission; the
  /// job's result records whether it was met, and the edf policy orders
  /// same-class jobs by it. 0 (the default) = no deadline.
  double deadline_ms = 0;

  int effective_exec_frames() const { return exec_frames < 0 ? frames : exec_frames; }
  void validate() const;
};

/// What a completed job hands back through its future.
struct JobResult {
  std::uint64_t id = 0;
  int device = -1;  ///< fleet device index that ran the job (to completion)
  /// How many injected device faults interrupted this job before it
  /// completed — 0 on the fault-free path, and never beyond the
  /// runtime's per-job retry budget.
  int attempts = 0;
  Route route = Route::SacNongeneric;
  int frames = 0;
  IntArray last_output;      ///< last executed frame (bit-exact vs single-device)
  apps::OpBreakdown ops;     ///< kernel/transfer/host split (simulated us)
  double sim_wall_us = 0;    ///< simulated device-time advance of this job
  double queue_wait_us = 0;  ///< real time from accept to dispatch
  double exec_us = 0;        ///< real dispatcher-thread time (all chunks)
  double latency_us = 0;     ///< real end-to-end: submit -> completion
  // -- multi-tenant SLO scheduling --------------------------------------------
  std::string tenant;                    ///< the spec's tenant id
  Priority priority = Priority::Normal;  ///< the spec's priority class
  double deadline_us = 0;                ///< SLO budget (spec.deadline_ms * 1000); 0 = none
  /// Whether latency_us stayed within deadline_us (true without one).
  bool slo_met = true;
  /// Frame-boundary displacements by higher-priority work this job
  /// survived before completing — each one cost at most the re-queue
  /// wait, never recomputation (completed frames are kept).
  int preemptions = 0;
};

/// Key identifying the compiled artefacts a job needs: dispatchers keep
/// one driver per (route, geometry) so repeat traffic skips
/// parse/typecheck/plan.
std::string driver_key(Route route, const apps::DownscalerConfig& config);

/// Coalescing key of the dynamic batcher: jobs agree on it exactly when
/// they can share one fused frame loop on a device — same compiled
/// driver (route + geometry), same optimizer level, same channel count.
std::string batch_key(const JobSpec& spec);

/// Static cost-model estimate of one job's simulated device time — the
/// load number the least-loaded placement compares. Derived from the
/// same analytic kernel/transfer models the simulator charges, so
/// bigger frames, more channels and the generic tiler's round trip all
/// shift placement.
double estimate_job_us(const JobSpec& spec, const gpu::DeviceSpec& device);

/// Single-device reference run of the same spec (fresh VirtualGpu, the
/// pre-fleet code path) on the given execution backend. Tests assert
/// fleet results bit-exact against this — and across backends.
JobResult reference_run(const JobSpec& spec, const gpu::DeviceSpec& device, unsigned workers = 1,
                        gpu::BackendKind backend = gpu::BackendKind::Sim);

}  // namespace saclo::serve
