#include "serve/autoscale.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/fmt.hpp"
#include "serve/scheduler.hpp"

namespace saclo::serve {

const char* scale_decision_name(ScaleDecision decision) {
  switch (decision) {
    case ScaleDecision::Hold:
      return "hold";
    case ScaleDecision::Up:
      return "up";
    case ScaleDecision::Down:
      return "down";
  }
  return "?";
}

void AutoscalePolicy::validate() const {
  if (min_devices < 1) {
    throw ServeError(cat("autoscale min_devices must be >= 1, got ", min_devices));
  }
  if (max_devices < min_devices) {
    throw ServeError(cat("autoscale max_devices ", max_devices, " is below min_devices ",
                         min_devices));
  }
  if (interval_ms <= 0) {
    throw ServeError(cat("autoscale interval_ms must be positive, got ", interval_ms));
  }
  if (queue_high <= 0) {
    throw ServeError(cat("autoscale queue_high must be positive, got ", queue_high));
  }
  if (queue_low < 0 || queue_low >= queue_high) {
    throw ServeError(cat("autoscale queue_low ", queue_low,
                         " must be in [0, queue_high) — the hysteresis band"));
  }
  if (p99_high_ms < 0) {
    throw ServeError(cat("autoscale p99_high_ms must be >= 0, got ", p99_high_ms));
  }
  if (slo_low < 0 || slo_low > 1) {
    throw ServeError(cat("autoscale slo_low must be in [0, 1], got ", slo_low));
  }
  if (up_periods < 1 || down_periods < 1) {
    throw ServeError(cat("autoscale up_periods/down_periods must be >= 1, got ", up_periods,
                         "/", down_periods));
  }
  if (cooldown_ms < 0) {
    throw ServeError(cat("autoscale cooldown_ms must be >= 0, got ", cooldown_ms));
  }
}

AutoscaleController::AutoscaleController(const AutoscalePolicy& policy)
    : policy_(policy), last_action_ms_(-std::numeric_limits<double>::infinity()) {
  policy_.validate();
}

ScaleDecision AutoscaleController::step(const AutoscaleSignals& signals, double now_ms) {
  // Cooldown: the fleet is still absorbing the last action (re-homed
  // queues, warm-up). Pressure observed now is transient — drop it.
  if (now_ms - last_action_ms_ < policy_.cooldown_ms) {
    up_streak_ = 0;
    down_streak_ = 0;
    return ScaleDecision::Hold;
  }

  const int active = std::max(1, signals.active);
  const double per_device = static_cast<double>(signals.queued) / active;
  const bool slo_pressure =
      (policy_.p99_high_ms > 0 && signals.p99_us > policy_.p99_high_ms * 1000.0) ||
      (policy_.slo_low > 0 && signals.min_slo_attainment < policy_.slo_low);
  const bool up_pressure = per_device > policy_.queue_high || slo_pressure;
  const bool down_pressure = per_device < policy_.queue_low && !slo_pressure;

  if (up_pressure && signals.active < policy_.max_devices) {
    down_streak_ = 0;
    if (++up_streak_ >= policy_.up_periods) {
      up_streak_ = 0;
      last_action_ms_ = now_ms;
      return ScaleDecision::Up;
    }
    return ScaleDecision::Hold;
  }
  if (down_pressure && signals.active > policy_.min_devices) {
    up_streak_ = 0;
    if (++down_streak_ >= policy_.down_periods) {
      down_streak_ = 0;
      last_action_ms_ = now_ms;
      return ScaleDecision::Down;
    }
    return ScaleDecision::Hold;
  }
  // In the hysteresis band (or clamped): pressure must be consecutive,
  // so a single calm period resets both streaks.
  up_streak_ = 0;
  down_streak_ = 0;
  return ScaleDecision::Hold;
}

Autoscaler::Autoscaler(ServeRuntime& runtime, const AutoscalePolicy& policy)
    : runtime_(runtime), controller_(policy) {
  thread_ = std::thread([this] { loop(); });
}

Autoscaler::~Autoscaler() { stop(); }

void Autoscaler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) {
      // Idempotent: only the join below remains.
    }
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Autoscaler::Stats Autoscaler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Autoscaler::loop() {
  const auto start = std::chrono::steady_clock::now();
  const auto interval = std::chrono::microseconds(
      static_cast<std::int64_t>(controller_.policy().interval_ms * 1000.0));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stop_requested_; })) break;
    lock.unlock();

    AutoscaleSignals signals;
    signals.queued = runtime_.queued_jobs();
    signals.active = runtime_.active_devices();
    const FleetMetrics::Snapshot snap = runtime_.metrics().snapshot();
    signals.p99_us = snap.latency_p99_us;
    for (const auto& tenant : snap.tenants) {
      if (tenant.slo_jobs > 0) {
        signals.min_slo_attainment =
            std::min(signals.min_slo_attainment, tenant.slo_attainment());
      }
    }
    const double now_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    const ScaleDecision decision = controller_.step(signals, now_ms);

    bool up = false;
    bool down = false;
    try {
      if (decision == ScaleDecision::Up) {
        runtime_.scale_up();
        up = true;
      } else if (decision == ScaleDecision::Down) {
        runtime_.scale_down();
        down = true;
      }
    } catch (const ServeError&) {
      // Lost a race (shutdown, a concurrent manual scale, the last
      // active device) — the next period re-evaluates from scratch.
    }

    lock.lock();
    ++stats_.periods;
    if (up) ++stats_.ups;
    if (down) ++stats_.downs;
  }
}

}  // namespace saclo::serve
