#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/fmt.hpp"

namespace saclo::serve {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

FleetMetrics::FleetMetrics(int devices) : devices_(static_cast<std::size_t>(devices)) {
  const auto now = std::chrono::steady_clock::now();
  for (DeviceState& d : devices_) d.active_since = now;
}

void FleetMetrics::set_active(int device, bool active) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  if (d.active == active) return;
  const auto now = std::chrono::steady_clock::now();
  if (d.active) {
    d.active_accum_us +=
        std::chrono::duration<double, std::micro>(now - d.active_since).count();
  } else {
    d.active_since = now;
  }
  d.active = active;
}

void FleetMetrics::on_scale_up(int device) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++scale_ups_;
  }
  set_active(device, true);
}

void FleetMetrics::on_drain_started(int device, int rehomed) {
  std::lock_guard<std::mutex> lock(mutex_);
  (void)devices_.at(static_cast<std::size_t>(device));  // bounds check only
  (void)rehomed;  // per-job on_rehomed calls keep the counter; this records the drain
  ++scale_downs_;
}

void FleetMetrics::on_drain_complete(int device) { set_active(device, false); }

void FleetMetrics::on_rehomed(int from, int to, bool queued) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& source = devices_.at(static_cast<std::size_t>(from));
  DeviceState& target = devices_.at(static_cast<std::size_t>(to));
  ++jobs_rehomed_;
  if (queued) {
    --source.queue_depth;
  } else {
    source.running = 0;
  }
  ++target.queue_depth;
  target.max_queue_depth = std::max(target.max_queue_depth, target.queue_depth);
}

void FleetMetrics::on_submit(int device, const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  ++submitted_;
  ++tenants_[tenant].submitted;
  ++d.queue_depth;
  d.max_queue_depth = std::max(d.max_queue_depth, d.queue_depth);
}

void FleetMetrics::on_dispatch(int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  --d.queue_depth;
  d.running = 1;
}

void FleetMetrics::on_complete(int device, const JobResult& result, double sim_clock_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  d.running = 0;
  ++d.jobs;
  d.frames += result.frames;
  d.busy_sim_us += result.sim_wall_us;
  d.sim_clock_us = sim_clock_us;
  ++completed_;
  frames_ += result.frames;
  latency_hist_.record(result.latency_us);
  sim_job_hist_.record(result.sim_wall_us);
  const std::size_t cls = std::min<std::size_t>(static_cast<std::size_t>(result.priority),
                                                class_latency_hist_.size() - 1);
  class_latency_hist_[cls].record(result.latency_us);
  TenantState& t = tenants_[result.tenant.empty() ? "default" : result.tenant];
  ++t.completed;
  if (result.deadline_us > 0) {
    ++t.slo_jobs;
    if (result.slo_met) {
      ++t.slo_met;
    } else {
      ++deadline_misses_;
    }
  }
}

void FleetMetrics::on_failed(int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  d.running = 0;
  ++d.jobs_failed;
  ++failed_;
}

void FleetMetrics::on_device_fault(int device, std::int64_t reclaimed_blocks) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  d.running = 0;
  ++d.faults;
  ++device_faults_;
  buffers_reclaimed_ += reclaimed_blocks;
}

void FleetMetrics::on_failover(int from, int to) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& target = devices_.at(static_cast<std::size_t>(to));
  ++retries_;
  if (from != to) ++failovers_;
  // The retried job sits in the target's queue until re-dispatched.
  ++target.queue_depth;
  target.max_queue_depth = std::max(target.max_queue_depth, target.queue_depth);
}

void FleetMetrics::on_degraded(int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  if (d.degraded) return;
  d.degraded = true;
  d.degraded_since = std::chrono::steady_clock::now();
}

void FleetMetrics::on_healed(int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  if (!d.degraded) return;
  d.degraded = false;
  d.degraded_accum_us += std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - d.degraded_since)
                             .count();
}

void FleetMetrics::on_shed(const std::string& tenant, ShedReason reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  (void)reason;  // the event log attributes reasons; counters stay coarse
  ++submitted_;
  ++shed_;
  TenantState& t = tenants_[tenant.empty() ? "default" : tenant];
  ++t.submitted;
  ++t.shed;
}

void FleetMetrics::on_preempted(int from, int to) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& source = devices_.at(static_cast<std::size_t>(from));
  DeviceState& target = devices_.at(static_cast<std::size_t>(to));
  ++preemptions_;
  source.running = 0;
  // The displaced job sits in the target's queue until re-dispatched.
  ++target.queue_depth;
  target.max_queue_depth = std::max(target.max_queue_depth, target.queue_depth);
}

void FleetMetrics::on_steal(int from, int to) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& source = devices_.at(static_cast<std::size_t>(from));
  DeviceState& target = devices_.at(static_cast<std::size_t>(to));
  ++steals_;
  --source.queue_depth;
  ++target.queue_depth;
  target.max_queue_depth = std::max(target.max_queue_depth, target.queue_depth);
}

void FleetMetrics::on_batch(int device, int size) {
  std::lock_guard<std::mutex> lock(mutex_);
  (void)devices_.at(static_cast<std::size_t>(device));  // bounds check only
  ++batches_;
  jobs_batched_ += size;
  batch_size_hist_.record(static_cast<double>(size));
}

void FleetMetrics::set_elapsed_real_us(double us) {
  std::lock_guard<std::mutex> lock(mutex_);
  elapsed_real_us_ = us;
}

void FleetMetrics::set_allocator_stats(int device, const CachingDeviceAllocator::Stats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeviceState& d = devices_.at(static_cast<std::size_t>(device));
  d.has_allocator = true;
  d.allocator = stats;
}

void FleetMetrics::set_build_info(std::string sha, std::string backend_opts) {
  std::lock_guard<std::mutex> lock(mutex_);
  build_sha_ = std::move(sha);
  build_backend_opts_ = std::move(backend_opts);
}

void FleetMetrics::set_events_dropped(std::uint64_t dropped) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_dropped_ = dropped;
}

void FleetMetrics::set_active_alerts(int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_alerts_ = count;
}

FleetMetrics::Snapshot FleetMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.jobs_submitted = submitted_;
  s.jobs_completed = completed_;
  s.jobs_failed = failed_;
  s.frames_completed = frames_;
  s.device_faults = device_faults_;
  s.failovers = failovers_;
  s.retries = retries_;
  s.buffers_reclaimed = buffers_reclaimed_;
  s.batches_formed = batches_;
  s.jobs_batched = jobs_batched_;
  s.jobs_shed = shed_;
  s.preemptions = preemptions_;
  s.steals = steals_;
  s.deadline_misses = deadline_misses_;
  s.scale_ups = scale_ups_;
  s.scale_downs = scale_downs_;
  s.jobs_rehomed = jobs_rehomed_;
  s.build_sha = build_sha_;
  s.build_backend_opts = build_backend_opts_;
  s.events_dropped = events_dropped_;
  s.active_alerts = active_alerts_;
  s.elapsed_real_us = elapsed_real_us_;
  for (const auto& [tenant, t] : tenants_) {
    Snapshot::TenantSnapshot ts;
    ts.tenant = tenant;
    ts.submitted = t.submitted;
    ts.completed = t.completed;
    ts.shed = t.shed;
    ts.slo_jobs = t.slo_jobs;
    ts.slo_met = t.slo_met;
    s.tenants.push_back(ts);
  }
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const DeviceState& d = devices_[i];
    DeviceSnapshot ds;
    ds.device = static_cast<int>(i);
    ds.jobs = d.jobs;
    ds.jobs_failed = d.jobs_failed;
    ds.faults = d.faults;
    ds.frames = d.frames;
    ds.degraded = d.degraded;
    ds.degraded_us = d.degraded_accum_us;
    if (d.degraded) {
      ds.degraded_us +=
          std::chrono::duration<double, std::micro>(now - d.degraded_since).count();
      ++s.degraded_devices;
    }
    ds.active = d.active;
    ds.active_us = d.active_accum_us;
    if (d.active) {
      ds.active_us += std::chrono::duration<double, std::micro>(now - d.active_since).count();
      ++s.active_devices;
    }
    s.device_seconds += ds.active_us / 1e6;
    ds.queue_depth = d.queue_depth;
    ds.max_queue_depth = d.max_queue_depth;
    ds.running = d.running;
    ds.busy_sim_us = d.busy_sim_us;
    ds.sim_clock_us = d.sim_clock_us;
    ds.has_allocator = d.has_allocator;
    ds.allocator = d.allocator;
    if (d.has_allocator) s.alloc_cap_evictions += d.allocator.cap_evictions;
    s.sim_makespan_us = std::max(s.sim_makespan_us, d.sim_clock_us);
    s.devices.push_back(ds);
  }
  for (DeviceSnapshot& ds : s.devices) {
    ds.utilization = s.sim_makespan_us > 0 ? ds.busy_sim_us / s.sim_makespan_us : 0.0;
  }
  if (s.sim_makespan_us > 0) {
    s.throughput_fps_sim = static_cast<double>(frames_) / (s.sim_makespan_us / 1e6);
  }
  if (elapsed_real_us_ > 0) {
    s.throughput_fps_real = static_cast<double>(frames_) / (elapsed_real_us_ / 1e6);
  }
  s.latency_p50_us = latency_hist_.percentile(0.50);
  s.latency_p95_us = latency_hist_.percentile(0.95);
  s.latency_p99_us = latency_hist_.percentile(0.99);
  s.latency_max_us = latency_hist_.max();
  s.latency_mean_us = latency_hist_.mean();
  s.sim_job_p50_us = sim_job_hist_.percentile(0.50);
  s.sim_job_p99_us = sim_job_hist_.percentile(0.99);
  s.latency_hist = latency_hist_;
  s.sim_job_hist = sim_job_hist_;
  s.batch_size_hist = batch_size_hist_;
  s.class_latency_hist = class_latency_hist_;
  return s;
}

std::string FleetMetrics::report() const {
  const Snapshot s = snapshot();
  std::string out;
  out += cat("fleet: ", s.devices.size(), " device(s), ", s.jobs_completed, "/", s.jobs_submitted,
             " jobs done, ", s.frames_completed, " frames\n");
  out += cat("throughput: ", fixed(s.throughput_fps_sim, 1), " frames/s simulated, ",
             fixed(s.throughput_fps_real, 1), " frames/s real\n");
  out += cat("latency (real): p50 ", fixed(s.latency_p50_us / 1e3, 2), "ms  p95 ",
             fixed(s.latency_p95_us / 1e3, 2), "ms  p99 ", fixed(s.latency_p99_us / 1e3, 2),
             "ms  max ", fixed(s.latency_max_us / 1e3, 2), "ms\n");
  out += cat("sim makespan ", fixed(s.sim_makespan_us / 1e6, 3), "s, sim job p50 ",
             fixed(s.sim_job_p50_us / 1e3, 2), "ms\n");
  out += cat("health: ", s.device_faults, " device fault(s), ", s.failovers, " failover(s), ",
             s.retries, " retry(s), ", s.jobs_failed, " failed job(s), ", s.degraded_devices,
             " degraded device(s)\n");
  out += cat("scheduling: ", s.jobs_shed, " shed, ", s.preemptions, " preemption(s), ",
             s.steals, " steal(s), ", s.deadline_misses, " deadline miss(es)\n");
  if (s.scale_ups > 0 || s.scale_downs > 0 ||
      s.active_devices != static_cast<int>(s.devices.size())) {
    out += cat("autoscale: ", s.active_devices, "/", s.devices.size(), " active, ",
               s.scale_ups, " scale-up(s), ", s.scale_downs, " scale-down(s), ",
               s.jobs_rehomed, " job(s) re-homed, ", fixed(s.device_seconds, 2),
               " device-seconds\n");
  }
  if (!s.tenants.empty()) {
    out += "tenants:\n";
    for (const Snapshot::TenantSnapshot& t : s.tenants) {
      out += cat("  ", pad_right(t.tenant, 12), pad_left(std::to_string(t.completed), 7), "/",
                 t.submitted, " done, ", t.shed, " shed, slo ", t.slo_met, "/", t.slo_jobs,
                 " (", fixed(100 * t.slo_attainment(), 1), "%)\n");
    }
  }
  if (s.batches_formed > 0) {
    out += cat("batching: ", s.batches_formed, " batch(es), ", s.jobs_batched,
               " jobs coalesced, max size ",
               static_cast<std::int64_t>(s.batch_size_hist.max()), "\n");
  }
  out += pad_right("device", 8) + pad_left("jobs", 7) + pad_left("failed", 8) +
         pad_left("frames", 8) + pad_left("util", 7) + pad_left("queue", 7) +
         pad_left("maxq", 6) + pad_left("faults", 8) + pad_left("hit%", 7) +
         pad_left("miss", 6) + pad_left("peakMB", 8) + "\n";
  out += std::string(72, '-') + "\n";
  for (const DeviceSnapshot& d : s.devices) {
    // A trailing '*' marks a currently degraded device.
    out += pad_right(cat("gpu", d.device, d.degraded ? "*" : ""), 8) +
           pad_left(std::to_string(d.jobs), 7) + pad_left(std::to_string(d.jobs_failed), 8) +
           pad_left(std::to_string(d.frames), 8) + pad_left(fixed(100 * d.utilization, 1), 7) +
           pad_left(std::to_string(d.queue_depth), 7) +
           pad_left(std::to_string(d.max_queue_depth), 6) +
           pad_left(std::to_string(d.faults), 8);
    if (d.has_allocator) {
      out += pad_left(fixed(100 * d.allocator.hit_rate(), 1), 7) +
             pad_left(std::to_string(d.allocator.misses), 6) +
             pad_left(fixed(static_cast<double>(d.allocator.pool_peak_bytes) / 1e6, 2), 8);
    } else {
      out += pad_left("-", 7) + pad_left("-", 6) + pad_left("-", 8);
    }
    out += "\n";
  }
  return out;
}

namespace {
std::string device_json(const FleetMetrics::DeviceSnapshot& d) {
  std::string out = cat("{\"device\":", d.device, ",\"jobs\":", d.jobs,
                        ",\"jobs_failed\":", d.jobs_failed, ",\"faults\":", d.faults,
                        ",\"degraded\":", d.degraded ? "true" : "false",
                        ",\"degraded_us\":", fixed(d.degraded_us, 1),
                        ",\"active\":", d.active ? "true" : "false",
                        ",\"active_us\":", fixed(d.active_us, 1), ",\"frames\":", d.frames,
                        ",\"queue_depth\":", d.queue_depth,
                        ",\"max_queue_depth\":", d.max_queue_depth,
                        ",\"busy_sim_us\":", fixed(d.busy_sim_us, 3),
                        ",\"sim_clock_us\":", fixed(d.sim_clock_us, 3),
                        ",\"utilization\":", fixed(d.utilization, 4));
  if (d.has_allocator) {
    out += cat(",\"allocator\":{\"hits\":", d.allocator.hits, ",\"misses\":", d.allocator.misses,
               ",\"hit_rate\":", fixed(d.allocator.hit_rate(), 4),
               ",\"frees\":", d.allocator.frees, ",\"live_blocks\":", d.allocator.live_blocks,
               ",\"cached_blocks\":", d.allocator.cached_blocks,
               ",\"cached_bytes\":", d.allocator.cached_bytes,
               ",\"cap_evictions\":", d.allocator.cap_evictions,
               ",\"fragmentation\":", fixed(d.allocator.fragmentation(), 4),
               ",\"pool_peak_bytes\":", d.allocator.pool_peak_bytes, "}");
  }
  return out + "}";
}
}  // namespace

std::string FleetMetrics::json() const {
  const Snapshot s = snapshot();
  std::string out = cat(
      "{\"devices\":", s.devices.size(), ",\"jobs_submitted\":", s.jobs_submitted,
      ",\"jobs_completed\":", s.jobs_completed, ",\"jobs_failed\":", s.jobs_failed,
      ",\"frames_completed\":", s.frames_completed,
      ",\"health\":{\"device_faults\":", s.device_faults, ",\"failovers\":", s.failovers,
      ",\"retries\":", s.retries, ",\"degraded_devices\":", s.degraded_devices,
      ",\"buffers_reclaimed\":", s.buffers_reclaimed, "}",
      ",\"batching\":{\"batches_formed\":", s.batches_formed,
      ",\"jobs_batched\":", s.jobs_batched,
      ",\"max_batch_size\":", static_cast<std::int64_t>(s.batch_size_hist.max()), "}",
      ",\"scheduling\":{\"jobs_shed\":", s.jobs_shed, ",\"preemptions\":", s.preemptions,
      ",\"steals\":", s.steals, ",\"deadline_misses\":", s.deadline_misses, "}",
      ",\"autoscale\":{\"scale_ups\":", s.scale_ups, ",\"scale_downs\":", s.scale_downs,
      ",\"jobs_rehomed\":", s.jobs_rehomed, ",\"active_devices\":", s.active_devices,
      ",\"device_seconds\":", fixed(s.device_seconds, 3),
      ",\"alloc_cap_evictions\":", s.alloc_cap_evictions, "}",
      ",\"elapsed_real_us\":", fixed(s.elapsed_real_us, 1),
      ",\"sim_makespan_us\":", fixed(s.sim_makespan_us, 3),
      ",\"throughput_fps_sim\":", fixed(s.throughput_fps_sim, 3),
      ",\"throughput_fps_real\":", fixed(s.throughput_fps_real, 3),
      ",\"latency_real_us\":{\"p50\":", fixed(s.latency_p50_us, 1), ",\"p95\":",
      fixed(s.latency_p95_us, 1), ",\"p99\":", fixed(s.latency_p99_us, 1), ",\"mean\":",
      fixed(s.latency_mean_us, 1), ",\"max\":", fixed(s.latency_max_us, 1), "}",
      ",\"sim_job_us\":{\"p50\":", fixed(s.sim_job_p50_us, 3), ",\"p99\":",
      fixed(s.sim_job_p99_us, 3), "}", ",\"tenants\":[");
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    const Snapshot::TenantSnapshot& t = s.tenants[i];
    if (i > 0) out += ",";
    // The same escape set covers the JSON string grammar's dangerous
    // characters (backslash, quote, newline), so /debug/fleet stays
    // parseable for hostile --tenant strings too.
    out += cat("{\"tenant\":\"", prom_escape_label_value(t.tenant), "\",\"submitted\":",
               t.submitted,
               ",\"completed\":", t.completed, ",\"shed\":", t.shed,
               ",\"slo_jobs\":", t.slo_jobs, ",\"slo_met\":", t.slo_met,
               ",\"slo_attainment\":", fixed(t.slo_attainment(), 4), "}");
  }
  out += "],\"latency_by_class\":{";
  for (std::size_t cls = 0; cls < s.class_latency_hist.size(); ++cls) {
    const obs::LogHistogram& h = s.class_latency_hist[cls];
    if (cls > 0) out += ",";
    out += cat("\"", priority_name(static_cast<Priority>(cls)), "\":{\"count\":", h.count(),
               ",\"p50\":", fixed(h.percentile(0.50), 1), ",\"p99\":",
               fixed(h.percentile(0.99), 1), ",\"max\":", fixed(h.max(), 1), "}");
  }
  out += "},\"per_device\":[";
  for (std::size_t i = 0; i < s.devices.size(); ++i) {
    if (i > 0) out += ",";
    out += device_json(s.devices[i]);
  }
  return out + "]}";
}

namespace {
void prom_scalar(std::string& out, const std::string& name, const std::string& type,
                 const std::string& help, const std::string& value) {
  out += cat("# HELP ", name, " ", help, "\n# TYPE ", name, " ", type, "\n", name, " ", value,
             "\n");
}
}  // namespace

std::string prom_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FleetMetrics::prometheus() const {
  const Snapshot s = snapshot();
  std::string out;
  if (!s.build_sha.empty() || !s.build_backend_opts.empty()) {
    out += "# HELP saclo_build_info Build identity (constant 1; the labels carry the data).\n";
    out += "# TYPE saclo_build_info gauge\n";
    out += cat("saclo_build_info{sha=\"", prom_escape_label_value(s.build_sha),
               "\",backend_opts=\"", prom_escape_label_value(s.build_backend_opts), "\"} 1\n");
  }
  prom_scalar(out, "saclo_jobs_submitted_total", "counter", "Jobs accepted by the runtime.",
              std::to_string(s.jobs_submitted));
  prom_scalar(out, "saclo_jobs_completed_total", "counter", "Jobs whose future resolved.",
              std::to_string(s.jobs_completed));
  prom_scalar(out, "saclo_jobs_failed_total", "counter",
              "Jobs that exhausted retries (future carries an exception).",
              std::to_string(s.jobs_failed));
  prom_scalar(out, "saclo_frames_completed_total", "counter", "Frames across completed jobs.",
              std::to_string(s.frames_completed));
  prom_scalar(out, "saclo_device_faults_total", "counter",
              "Injected device faults observed fleet-wide.", std::to_string(s.device_faults));
  prom_scalar(out, "saclo_failovers_total", "counter", "Retries that moved device.",
              std::to_string(s.failovers));
  prom_scalar(out, "saclo_retries_total", "counter", "Faulted jobs re-enqueued.",
              std::to_string(s.retries));
  prom_scalar(out, "saclo_buffers_reclaimed_total", "counter",
              "Allocator blocks swept back after faults.", std::to_string(s.buffers_reclaimed));
  prom_scalar(out, "saclo_degraded_devices", "gauge", "Devices currently marked degraded.",
              std::to_string(s.degraded_devices));
  prom_scalar(out, "saclo_batches_formed_total", "counter",
              "Dispatches that coalesced two or more jobs.", std::to_string(s.batches_formed));
  prom_scalar(out, "saclo_jobs_batched_total", "counter",
              "Jobs that rode in a coalesced batch.", std::to_string(s.jobs_batched));
  prom_scalar(out, "saclo_jobs_shed_total", "counter",
              "Submissions refused by admission control or load shedding.",
              std::to_string(s.jobs_shed));
  prom_scalar(out, "saclo_preemptions_total", "counter",
              "In-flight jobs displaced at a frame boundary.", std::to_string(s.preemptions));
  prom_scalar(out, "saclo_steals_total", "counter",
              "Queued jobs moved to an idle dispatcher.", std::to_string(s.steals));
  prom_scalar(out, "saclo_deadline_misses_total", "counter",
              "Jobs completed past their SLO deadline.", std::to_string(s.deadline_misses));
  prom_scalar(out, "saclo_scale_ups_total", "counter", "Devices activated by the autoscaler.",
              std::to_string(s.scale_ups));
  prom_scalar(out, "saclo_scale_downs_total", "counter", "Graceful device drains started.",
              std::to_string(s.scale_downs));
  prom_scalar(out, "saclo_jobs_rehomed_total", "counter",
              "Queued jobs moved off draining devices.", std::to_string(s.jobs_rehomed));
  prom_scalar(out, "saclo_active_devices", "gauge", "Devices currently placement-eligible.",
              std::to_string(s.active_devices));
  prom_scalar(out, "saclo_device_seconds_total", "counter",
              "Sum over devices of real seconds spent active.", fixed(s.device_seconds, 3));
  prom_scalar(out, "saclo_alloc_cap_evictions_total", "counter",
              "Allocator blocks evicted by the per-size-class cache cap, fleet-wide.",
              std::to_string(s.alloc_cap_evictions));
  prom_scalar(out, "saclo_sim_makespan_us", "gauge",
              "Fleet simulated makespan (max device clock), microseconds.",
              fixed(s.sim_makespan_us, 3));
  prom_scalar(out, "saclo_throughput_fps_sim", "gauge",
              "Frames per second of simulated device time.", fixed(s.throughput_fps_sim, 3));
  prom_scalar(out, "saclo_throughput_fps_real", "gauge", "Frames per second of real wall clock.",
              fixed(s.throughput_fps_real, 3));
  prom_scalar(out, "saclo_events_dropped_total", "counter",
              "Structured events rejected because the event ring was full.",
              std::to_string(s.events_dropped));
  prom_scalar(out, "saclo_alerts_active", "gauge", "Alerts currently firing.",
              std::to_string(s.active_alerts));
  out += "# HELP saclo_device_jobs_total Jobs completed per device.\n";
  out += "# TYPE saclo_device_jobs_total counter\n";
  for (const DeviceSnapshot& d : s.devices) {
    out += cat("saclo_device_jobs_total{device=\"", d.device, "\"} ", d.jobs, "\n");
  }
  out += "# HELP saclo_device_utilization Busy share of the fleet makespan per device.\n";
  out += "# TYPE saclo_device_utilization gauge\n";
  for (const DeviceSnapshot& d : s.devices) {
    out += cat("saclo_device_utilization{device=\"", d.device, "\"} ", fixed(d.utilization, 4),
               "\n");
  }
  if (!s.tenants.empty()) {
    out += "# HELP saclo_tenant_slo_attainment Share of a tenant's deadline jobs completed "
           "within their SLO.\n";
    out += "# TYPE saclo_tenant_slo_attainment gauge\n";
    for (const Snapshot::TenantSnapshot& t : s.tenants) {
      out += cat("saclo_tenant_slo_attainment{tenant=\"", prom_escape_label_value(t.tenant),
                 "\"} ", fixed(t.slo_attainment(), 4), "\n");
    }
    out += "# HELP saclo_tenant_jobs_shed_total Submissions shed per tenant.\n";
    out += "# TYPE saclo_tenant_jobs_shed_total counter\n";
    for (const Snapshot::TenantSnapshot& t : s.tenants) {
      out += cat("saclo_tenant_jobs_shed_total{tenant=\"", prom_escape_label_value(t.tenant),
                 "\"} ", t.shed, "\n");
    }
  }
  obs::append_prometheus_histogram(out, "saclo_job_latency_us",
                                   "Real end-to-end job latency (submit to completion).",
                                   s.latency_hist);
  obs::append_prometheus_histogram(out, "saclo_job_sim_us",
                                   "Simulated device time per completed job.", s.sim_job_hist);
  obs::append_prometheus_histogram(out, "saclo_batch_size",
                                   "Sizes of coalesced batches (>= 2).", s.batch_size_hist);
  for (std::size_t cls = 0; cls < s.class_latency_hist.size(); ++cls) {
    obs::append_prometheus_histogram(
        out, "saclo_class_latency_us",
        "Real end-to-end job latency split by priority class.", s.class_latency_hist[cls],
        cat("class=\"", prom_escape_label_value(priority_name(static_cast<Priority>(cls))),
            "\""));
  }
  return out;
}

}  // namespace saclo::serve
