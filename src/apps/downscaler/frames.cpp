#include "apps/downscaler/frames.hpp"

#include <algorithm>
#include <fstream>

#include "core/fmt.hpp"

namespace saclo::apps {

IntArray synthetic_channel(const Shape& shape, int frame_index, int channel) {
  if (shape.rank() != 2) throw Error("synthetic_channel expects a 2-D shape");
  const std::int64_t h = shape[0];
  const std::int64_t w = shape[1];
  // A moving plaid with a channel-dependent phase: smooth regions,
  // edges and motion, all deterministic.
  return IntArray::generate(shape, [&](const Index& i) {
    const std::int64_t y = i[0];
    const std::int64_t x = i[1];
    const std::int64_t t = frame_index;
    const std::int64_t c = channel;
    std::int64_t v = (x * 13 + y * 7 + t * 5 + c * 83) % 256;
    // Block structure (macroblock-ish edges).
    if (((x / 16) + (y / 16) + t) % 2 == 0) v = 255 - v;
    // Moving diagonal bar.
    if ((x + y + 3 * t) % std::max<std::int64_t>(w / 4, 1) < 8) v = (v + 128) % 256;
    return v;
  });
}

RgbFrame synthetic_frame(const Shape& shape, int frame_index) {
  return RgbFrame{synthetic_channel(shape, frame_index, 0),
                  synthetic_channel(shape, frame_index, 1),
                  synthetic_channel(shape, frame_index, 2)};
}

void write_ppm(const std::string& path, const RgbFrame& frame) {
  const Shape& s = frame.r.shape();
  if (frame.g.shape() != s || frame.b.shape() != s || s.rank() != 2) {
    throw Error("write_ppm: channels must share one 2-D shape");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error(cat("cannot open '", path, "' for writing"));
  out << "P6\n" << s[1] << " " << s[0] << "\n255\n";
  auto clamp8 = [](std::int64_t v) {
    return static_cast<unsigned char>(std::clamp<std::int64_t>(v, 0, 255));
  };
  for (std::int64_t i = 0; i < s.elements(); ++i) {
    const unsigned char px[3] = {clamp8(frame.r[i]), clamp8(frame.g[i]), clamp8(frame.b[i])};
    out.write(reinterpret_cast<const char*>(px), 3);
  }
}

}  // namespace saclo::apps
