#include "apps/downscaler/pipelines.hpp"

#include <map>
#include <utility>

#include "apps/downscaler/frames.hpp"
#include "core/fmt.hpp"
#include "sac/parser.hpp"
#include "sac/typecheck.hpp"

namespace saclo::apps {

using sac::ArgSpec;
using sac::ElemType;
using sac::Value;

OpBreakdown& OpBreakdown::operator+=(const OpBreakdown& other) {
  kernel_us += other.kernel_us;
  h2d_us += other.h2d_us;
  d2h_us += other.d2h_us;
  host_us += other.host_us;
  kernel_launches += other.kernel_launches;
  h2d_calls += other.h2d_calls;
  d2h_calls += other.d2h_calls;
  return *this;
}

OpBreakdown breakdown_totals(const gpu::Profiler& gpu_profiler,
                             const gpu::Profiler& host_profiler) {
  OpBreakdown b;
  for (const auto& row : gpu_profiler.rows()) {
    switch (row.kind) {
      case gpu::OpKind::Kernel:
        b.kernel_us += row.total_us;
        b.kernel_launches += row.calls;
        break;
      case gpu::OpKind::MemcpyHtoD:
        b.h2d_us += row.total_us;
        b.h2d_calls += row.calls;
        break;
      case gpu::OpKind::MemcpyDtoH:
        b.d2h_us += row.total_us;
        b.d2h_calls += row.calls;
        break;
      case gpu::OpKind::Host:
        b.host_us += row.total_us;
        break;
    }
  }
  b.host_us += host_profiler.total_us(gpu::OpKind::Host);
  return b;
}

OpBreakdown breakdown_delta(const gpu::Profiler& gpu_profiler, const gpu::Profiler& host_profiler,
                            const OpBreakdown& before) {
  OpBreakdown now = breakdown_totals(gpu_profiler, host_profiler);
  OpBreakdown d;
  d.kernel_us = now.kernel_us - before.kernel_us;
  d.h2d_us = now.h2d_us - before.h2d_us;
  d.d2h_us = now.d2h_us - before.d2h_us;
  d.host_us = now.host_us - before.host_us;
  d.kernel_launches = now.kernel_launches - before.kernel_launches;
  d.h2d_calls = now.h2d_calls - before.h2d_calls;
  d.d2h_calls = now.d2h_calls - before.d2h_calls;
  return d;
}

std::string nvprof_style_table(const std::string& h_label, const OpBreakdown& h,
                               const std::string& v_label, const OpBreakdown& v) {
  gpu::Profiler p;
  p.record(h_label, gpu::OpKind::Kernel, h.kernel_launches, h.kernel_us);
  p.record(v_label, gpu::OpKind::Kernel, v.kernel_launches, v.kernel_us);
  p.record("memcpyHtoDasync", gpu::OpKind::MemcpyHtoD, h.h2d_calls + v.h2d_calls,
           h.h2d_us + v.h2d_us);
  p.record("memcpyDtoHasync", gpu::OpKind::MemcpyDtoH, h.d2h_calls + v.d2h_calls,
           h.d2h_us + v.d2h_us);
  if (h.host_us + v.host_us > 0) {
    p.record("host (output tiler)", gpu::OpKind::Host, 0, h.host_us + v.host_us);
  }
  return p.table();
}

// --- SaC pipelines ------------------------------------------------------------------

SacDownscaler::SacDownscaler(const DownscalerConfig& config, const Options& options)
    : cfg_(config), opts_(options) {
  cfg_.validate();
  module_ = sac::parse(downscaler_sac_source(cfg_));
  sac::typecheck(module_);
  sac::CompileOptions copts;
  copts.enable_wlf = opts_.enable_wlf;
  const std::string h_fn = opts_.generic ? "hfilter_generic" : "hfilter_nongeneric";
  const std::string v_fn = opts_.generic ? "vfilter_generic" : "vfilter_nongeneric";
  h_fn_ = sac::compile(module_, h_fn, {ArgSpec::array(ElemType::Int, cfg_.frame_shape())}, copts);
  v_fn_ = sac::compile(module_, v_fn, {ArgSpec::array(ElemType::Int, cfg_.mid_shape())}, copts);
  h_prog_ = sac_cuda::CudaProgram::plan(h_fn_);
  v_prog_ = sac_cuda::CudaProgram::plan(v_fn_);
}

SacDownscaler::CudaResult SacDownscaler::run_cuda_chain(int frames, int channels,
                                                        int exec_frames) {
  gpu::VirtualGpu gpu(opts_.device, opts_.workers, opts_.backend);
  return run_cuda_chain_on(gpu, frames, channels, exec_frames);
}

SacDownscaler::CudaResult SacDownscaler::run_cuda_chain_on(gpu::VirtualGpu& gpu, int frames,
                                                           int channels, int exec_frames,
                                                           const FrameCallback& on_frame,
                                                           bool flush, int first_frame,
                                                           const FrameGate& gate) {
  gpu::cuda::Runtime rt(gpu);
  gpu::Profiler host_profiler;
  CudaResult result;
  const double clock0 = gpu.clock_us();

  std::optional<gpu::StreamSet> streams;
  if (opts_.async_streams) {
    gpu::StreamSet ss;
    ss.h2d = gpu.create_stream();
    ss.compute = gpu.create_stream();
    ss.d2h = gpu.create_stream();
    ss.host = gpu.create_stream();
    streams = ss;
  }

  // Compute-done events per iteration, the double-buffer throttle: the
  // upload of iteration i may start only once the frame buffer of
  // iteration i-2 was consumed (cudaStreamWaitEvent on the copy stream).
  std::vector<gpu::EventId> iter_done;
  int iter = 0;

  result.next_frame = frames;
  for (int f = first_frame; f < frames; ++f) {
    // Preemption point: the first frame of a call always runs (every
    // dispatch makes progress); later frames yield to the gate.
    if (gate && f > first_frame && !gate(f)) {
      result.next_frame = f;
      break;
    }
    const bool exec = f < exec_frames;
    for (int ch = 0; ch < channels; ++ch) {
      if (streams && iter >= 2) gpu.wait_event(streams->h2d, iter_done[iter - 2]);

      Value frame;
      if (exec) frame = Value(synthetic_channel(cfg_.frame_shape(), f, ch));

      OpBreakdown before = breakdown_totals(gpu.profiler(), host_profiler);
      sac_cuda::CudaProgram::RunOptions hopts;
      hopts.execute = exec;
      hopts.silent_result = true;  // the intermediate stays on the device
      hopts.streams = streams;
      Value mid = h_prog_.run(rt, {frame}, opts_.host, host_profiler, hopts);
      result.h += breakdown_delta(gpu.profiler(), host_profiler, before);

      before = breakdown_totals(gpu.profiler(), host_profiler);
      sac_cuda::CudaProgram::RunOptions vopts;
      vopts.execute = exec;
      vopts.silent_params.insert(v_prog_.compiled().fn.params[0].second);
      vopts.streams = streams;
      Value out = v_prog_.run(rt, {mid}, opts_.host, host_profiler, vopts);
      result.v += breakdown_delta(gpu.profiler(), host_profiler, before);

      if (streams) iter_done.push_back(gpu.record_event(streams->compute));
      ++iter;
      if (exec && ch == 0) result.last_output = out.ints();
    }
    if (on_frame) on_frame(f);
  }
  if (flush) gpu.synchronize();
  result.nvprof_table = nvprof_style_table(
      cat("H. Filter (", h_prog_.kernel_count(), " kernels)"), result.h,
      cat("V. Filter (", v_prog_.kernel_count(), " kernels)"), result.v);
  // Async host blocks run on the gpu timeline (host stream) and are
  // already inside the makespan; sync ones live in host_profiler. On a
  // fleet device the clock is cumulative, so the job's wall time is the
  // advance since entry.
  result.wall_us = gpu.clock_us() - clock0 + host_profiler.total_us();
  result.timeline = gpu.profiler().timeline();
  if (opts_.capture_trace) result.trace_json = gpu.profiler().chrome_trace_json();
  return result;
}

SacDownscaler::FilterResult SacDownscaler::run_cuda_filter(bool horizontal, int iterations,
                                                           int exec_iterations,
                                                           bool resident_data) {
  gpu::VirtualGpu gpu(opts_.device, opts_.workers, opts_.backend);
  gpu::cuda::Runtime rt(gpu);
  gpu::Profiler host_profiler;
  sac_cuda::CudaProgram& prog = horizontal ? h_prog_ : v_prog_;
  const Shape in_shape = horizontal ? cfg_.frame_shape() : cfg_.mid_shape();
  FilterResult result;
  result.kernels = prog.kernel_count();
  const std::string& param = prog.compiled().fn.params[0].second;
  for (int i = 0; i < iterations; ++i) {
    const bool exec = i < exec_iterations;
    Value input;
    if (exec) input = Value(synthetic_channel(in_shape, resident_data ? 0 : i, 0));
    sac_cuda::CudaProgram::RunOptions opts;
    opts.execute = exec;
    if (resident_data && i > 0) {
      // The benchmark loop iterates over device-resident data: only the
      // first iteration pays the upload, and results are fetched once
      // at the end.
      opts.silent_params.insert(param);
    }
    if (resident_data && i + 1 < iterations) opts.silent_result = true;
    Value out = prog.run(rt, {input}, opts_.host, host_profiler, opts);
    if (exec) result.last_output = out.ints();
  }
  result.ops = breakdown_totals(gpu.profiler(), host_profiler);
  return result;
}

SacDownscaler::SeqResult SacDownscaler::run_seq(int iterations, int exec_iterations) {
  SeqResult result;
  const bool exec = exec_iterations > 0;
  Value frame;
  if (exec) frame = Value(synthetic_channel(cfg_.frame_shape(), 0, 0));
  sac_cuda::HostRunResult h =
      sac_cuda::run_sequential(h_fn_, exec ? std::vector<Value>{frame} : std::vector<Value>{},
                               opts_.host, exec);
  Value mid = h.result;
  sac_cuda::HostRunResult v =
      sac_cuda::run_sequential(v_fn_, exec ? std::vector<Value>{mid} : std::vector<Value>{},
                               opts_.host, exec);
  result.h_us = h.time_us * iterations;
  result.v_us = v.time_us * iterations;
  if (exec) result.last_output = v.result.ints();
  return result;
}

// --- GASPARD2 pipeline ----------------------------------------------------------------

namespace {
gaspard::OpenClApplication build_optimized_app(const DownscalerConfig& config,
                                               const GaspardDownscaler::Options& options,
                                               std::vector<opt::AppliedRewrite>& rewrites) {
  aol::Model model =
      options.rgb ? build_downscaler_model(config) : build_single_channel_model(config);
  if (options.opt_level > 0) {
    opt::SearchOptions search;
    search.level = options.opt_level;
    search.device = options.device;
    opt::OptResult optimized = opt::optimize(model, search);
    rewrites = std::move(optimized.rewrites);
    model = std::move(optimized.model);
  }
  return gaspard::OpenClApplication::build(std::move(model));
}
}  // namespace

GaspardDownscaler::GaspardDownscaler(const DownscalerConfig& config, const Options& options)
    : cfg_(config), opts_(options), app_(build_optimized_app(config, options, rewrites_)) {}

GaspardDownscaler::Result GaspardDownscaler::run(int frames, int exec_frames) {
  gpu::VirtualGpu gpu(opts_.device, opts_.workers, opts_.backend);
  return run_on(gpu, frames, exec_frames);
}

GaspardDownscaler::Result GaspardDownscaler::run_on(gpu::VirtualGpu& gpu, int frames,
                                                    int exec_frames,
                                                    const FrameCallback& on_frame, bool flush,
                                                    int first_frame, const FrameGate& gate) {
  gpu::opencl::CommandQueue queue(gpu);
  const double clock0 = gpu.clock_us();
  // Per-row snapshot so a fleet device's earlier jobs don't leak into
  // this job's H/V split.
  std::map<std::string, std::pair<std::int64_t, double>> rows_before;
  for (const auto& row : gpu.profiler().rows()) {
    rows_before.emplace(row.name, std::make_pair(row.calls, row.total_us));
  }
  std::optional<gpu::opencl::CommandQueue> upload;
  std::optional<gpu::opencl::CommandQueue> compute;
  std::optional<gpu::opencl::CommandQueue> download;
  if (opts_.async_streams) {
    upload.emplace(gpu, gpu.create_stream());
    compute.emplace(gpu, gpu.create_stream());
    download.emplace(gpu, gpu.create_stream());
  }
  Result result;

  // Double-buffer throttle: frame f's uploads wait until frame f-2's
  // kernels finished (its input buffers are being reused).
  std::vector<gpu::EventId> frame_done;

  result.next_frame = frames;
  for (int f = first_frame; f < frames; ++f) {
    // Preemption point (see SacDownscaler::run_cuda_chain_on).
    if (gate && f > first_frame && !gate(f)) {
      result.next_frame = f;
      break;
    }
    const bool exec = f < exec_frames;
    std::map<std::string, IntArray> inputs;
    if (exec) {
      int ch = 0;
      for (const std::string& in : app_.model().inputs()) {
        inputs.emplace(in, synthetic_channel(cfg_.frame_shape(), f, ch++));
      }
    }
    std::map<std::string, IntArray> outputs;
    if (opts_.async_streams) {
      // Index relative to this call's first frame: frame_done only
      // holds markers this call pushed (a resumed chunk starts fresh).
      const int it = f - first_frame;
      if (it >= 2) upload->enqueue_wait(frame_done[static_cast<std::size_t>(it - 2)]);
      outputs = app_.run(*upload, *compute, *download, inputs, exec);
      frame_done.push_back(compute->enqueue_marker());
    } else {
      outputs = app_.run(queue, inputs, exec);
    }
    if (exec && !outputs.empty()) result.last_output = outputs.begin()->second;
    if (on_frame) on_frame(f);
  }
  if (flush) gpu.synchronize();

  // Split the kernel rows between the horizontal and vertical filters;
  // attribute uploads to H (they feed it) and downloads to V. Only this
  // call's delta counts — the profiler is cumulative on a fleet device.
  int h_kernels = 0;
  int v_kernels = 0;
  for (const auto& row : gpu.profiler().rows()) {
    std::int64_t calls = row.calls;
    double us = row.total_us;
    if (auto it = rows_before.find(row.name); it != rows_before.end()) {
      calls -= it->second.first;
      us -= it->second.second;
    }
    if (calls == 0 && us == 0.0) continue;
    switch (row.kind) {
      case gpu::OpKind::Kernel: {
        const bool is_h = row.name.find("hf") != std::string::npos;
        OpBreakdown& b = is_h ? result.h : result.v;
        b.kernel_us += us;
        b.kernel_launches += calls;
        break;
      }
      case gpu::OpKind::MemcpyHtoD:
        result.h.h2d_us += us;
        result.h.h2d_calls += calls;
        break;
      case gpu::OpKind::MemcpyDtoH:
        result.v.d2h_us += us;
        result.v.d2h_calls += calls;
        break;
      case gpu::OpKind::Host:
        break;
    }
  }
  for (const auto& k : app_.kernels()) {
    if (k.name.find("hf") != std::string::npos) {
      ++h_kernels;
    } else {
      ++v_kernels;
    }
  }
  result.nvprof_table =
      nvprof_style_table(cat("H. Filter (", h_kernels, " kernels)"), result.h,
                         cat("V. Filter (", v_kernels, " kernels)"), result.v);
  result.wall_us = gpu.clock_us() - clock0;
  result.timeline = gpu.profiler().timeline();
  if (opts_.capture_trace) result.trace_json = gpu.profiler().chrome_trace_json();
  return result;
}

}  // namespace saclo::apps
