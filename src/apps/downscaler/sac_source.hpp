#pragma once

#include <string>

#include "apps/downscaler/config.hpp"

namespace saclo::apps {

/// Generates the mini-SaC module implementing the paper's downscaler
/// for a given geometry — the exact programs of Figures 4-7:
///
///  * `input_tiler`  — the generic input tiler (Figure 4),
///  * `task_h`/`task_v` — the per-filter compression tasks (Figure 5),
///  * `generic_output_tiler` — the for-loop nest scatter (Figure 6),
///  * `nongeneric_output_tiler_{h,v}` — the with-loop scatters
///    specialised to the tile sizes (Figure 7),
///  * `hfilter_{generic,nongeneric}`, `vfilter_{generic,nongeneric}`
///    — single-channel filter entry points,
///  * `downscale_{generic,nongeneric}` — full H-then-V chains,
///  * `zeros` — frame allocation helper.
///
/// All shapes and tiler matrices are spelled as literals so the
/// compiler specialises exactly like sac2c would for a fixed frame
/// format.
std::string downscaler_sac_source(const DownscalerConfig& config);

}  // namespace saclo::apps
