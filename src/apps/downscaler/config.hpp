#pragma once

#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "core/shape.hpp"

namespace saclo::apps {

/// One directional filter of the H.263 downscaler: `in_pattern` input
/// pixels are gathered with paving step `paving`; each of the
/// `window_starts` produces one output pixel by averaging `window`
/// consecutive inputs (the paper's task computes
/// `tmp/6 - tmp%6` over 6-pixel windows).
struct FilterSpec {
  std::int64_t in_pattern = 11;
  std::int64_t paving = 8;
  std::vector<std::int64_t> window_starts{0, 2, 5};
  std::int64_t window = 6;

  std::int64_t tile() const { return static_cast<std::int64_t>(window_starts.size()); }
};

/// Geometry of the whole downscaler. Defaults reproduce the paper's
/// evaluation setup: 1080x1920 frames, horizontal 1920 -> 720
/// (11-pattern, paving 8, tiles of 3), vertical 1080 -> 480
/// (13-pattern, paving 9, tiles of 4 — the 9/4 ratio of the H.263
/// 288->128 scaling).
struct DownscalerConfig {
  std::int64_t height = 1080;
  std::int64_t width = 1920;
  FilterSpec h{11, 8, {0, 2, 5}, 6};
  FilterSpec v{13, 9, {0, 2, 5, 7}, 6};

  std::int64_t mid_width() const { return width / h.paving * h.tile(); }
  std::int64_t out_height() const { return height / v.paving * v.tile(); }

  Shape frame_shape() const { return Shape{height, width}; }
  Shape mid_shape() const { return Shape{height, mid_width()}; }
  Shape out_shape() const { return Shape{out_height(), mid_width()}; }

  Shape h_repetition() const { return Shape{height, width / h.paving}; }
  Shape v_repetition() const { return Shape{height / v.paving, mid_width()}; }

  /// Throws Error when the geometry is inconsistent (non-dividing
  /// paving, windows outside the pattern, ...).
  void validate() const;

  /// A small configuration for tests: 18x32 frames -> 8x12 output.
  static DownscalerConfig tiny();
  /// A mid-size configuration for quick benches: 180x256.
  static DownscalerConfig small();
  /// The paper's evaluation configuration (1080x1920).
  static DownscalerConfig paper();
};

}  // namespace saclo::apps
