#pragma once

#include <functional>
#include <string>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/config.hpp"
#include "apps/downscaler/sac_source.hpp"
#include "gaspard/chain.hpp"
#include "gpu/backend_kind.hpp"
#include "opt/search.hpp"
#include "sac_cuda/codegen_text.hpp"
#include "sac_cuda/program.hpp"

namespace saclo::apps {

/// Per-frame progress hook of the frame-loop drivers: called after a
/// frame's operations were issued (async paths: enqueued, not yet
/// synced) with the frame index. The serving runtime uses it to emit
/// frame_done events into its structured log; an empty function costs
/// one branch per frame.
using FrameCallback = std::function<void(int frame)>;

/// Cooperative preemption check of the frame-loop drivers: consulted
/// before issuing each frame beyond the first of the call. Returning
/// false stops the loop at that frame boundary — the result's
/// next_frame then names the first frame not issued, and a later call
/// with first_frame = next_frame resumes bit-exactly (frames are pure
/// functions of their index). The first frame of a call always runs,
/// so every dispatch makes progress. An empty function never stops.
using FrameGate = std::function<bool(int next_frame)>;

/// Per-filter timing breakdown (simulated microseconds), the unit of
/// every figure/table reproduction.
struct OpBreakdown {
  double kernel_us = 0;
  double h2d_us = 0;
  double d2h_us = 0;
  double host_us = 0;
  std::int64_t kernel_launches = 0;
  std::int64_t h2d_calls = 0;
  std::int64_t d2h_calls = 0;

  double total_us() const { return kernel_us + h2d_us + d2h_us + host_us; }
  OpBreakdown& operator+=(const OpBreakdown& other);
};

/// Snapshot helper: the delta of a profiler between two points, split
/// by operation kind.
OpBreakdown breakdown_delta(const gpu::Profiler& gpu_profiler, const gpu::Profiler& host_profiler,
                            const OpBreakdown& before);
OpBreakdown breakdown_totals(const gpu::Profiler& gpu_profiler,
                             const gpu::Profiler& host_profiler);

/// The SaC-side experiment driver: compiles the generated downscaler
/// module once per variant and replays it over a frame loop on the
/// simulated GPU (SAC-CUDA) or host model (SAC-Seq).
class SacDownscaler {
 public:
  struct Options {
    bool generic = false;    ///< generic (for-loop) vs non-generic output tilers
    bool enable_wlf = true;  ///< the WLF ablation switch
    gpu::DeviceSpec device = gpu::gtx480();
    gpu::HostSpec host = gpu::i7_930();
    unsigned workers = 0;  ///< thread-pool width for functional kernel execution
    /// Execution backend of the internally constructed VirtualGpu (the
    /// standalone run_* entry points; run_*_on uses the caller's
    /// device). Results are bit-exact across backends.
    gpu::BackendKind backend = gpu::BackendKind::Sim;
    /// Issue the frame loop asynchronously on CUDA streams: the upload
    /// of frame k+1 and the download of frame k-1 overlap frame k's
    /// kernels, double-buffered (an upload waits until the frame buffer
    /// two iterations back was consumed). Bit-exact vs synchronous.
    bool async_streams = false;
    bool capture_trace = false;  ///< fill CudaResult::trace_json (Chrome trace_event)
  };

  SacDownscaler(const DownscalerConfig& config, const Options& options);

  const sac_cuda::CudaProgram& h_program() const { return h_prog_; }
  const sac_cuda::CudaProgram& v_program() const { return v_prog_; }
  int h_kernels() const { return h_prog_.kernel_count(); }
  int v_kernels() const { return v_prog_.kernel_count(); }
  const sac::Module& module() const { return module_; }
  const DownscalerConfig& config() const { return cfg_; }

  struct CudaResult {
    OpBreakdown h;
    OpBreakdown v;
    IntArray last_output;        ///< last executed frame, first channel
    std::string nvprof_table;    ///< Table II style report
    /// End-to-end wall clock of the frame loop: the stream-timeline
    /// makespan plus (synchronous path) serial host time. With
    /// async_streams this is strictly below the serialized sum whenever
    /// transfers hid behind kernels.
    double wall_us = 0;
    std::string timeline;    ///< per-stream busy/overlap report
    std::string trace_json;  ///< Chrome trace (only with capture_trace)
    /// First frame not issued by this call: `frames` when the loop ran
    /// to the end, the gate's stop point otherwise (resume from here).
    int next_frame = 0;
    double total_us() const { return h.total_us() + v.total_us(); }
  };

  /// The paper's Table II scenario: per frame and channel, upload the
  /// frame, run H then V with the intermediate staying on the device,
  /// download the result. The first `exec_frames` frames execute
  /// functionally; the rest accrue simulated time only.
  CudaResult run_cuda_chain(int frames, int channels, int exec_frames);

  /// The same frame loop on a caller-provided device — the serving
  /// runtime's fleet path, where one VirtualGpu outlives many jobs.
  /// Simulated time accrues on that device's cumulative timeline;
  /// every field of the result (breakdowns, wall_us) is the delta of
  /// this call. Must not be invoked concurrently on the same
  /// SacDownscaler or the same device (the fleet scheduler guarantees
  /// one dispatcher thread per device). flush=false elides the trailing
  /// synchronize (see GaspardDownscaler::run_on) for batched jobs.
  /// `first_frame`/`gate` are the scheduler's preemption points: the
  /// loop covers [first_frame, frames) and may stop early at a frame
  /// boundary when the gate says so (see FrameGate).
  CudaResult run_cuda_chain_on(gpu::VirtualGpu& gpu, int frames, int channels, int exec_frames,
                               const FrameCallback& on_frame = {}, bool flush = true,
                               int first_frame = 0, const FrameGate& gate = {});

  /// The paper's Figure 9 scenario: each filter "executed for 300
  /// iterations". With resident_data=true the input is uploaded once
  /// and iterated on the device (a benchmark loop over resident data,
  /// which is what reproduces the paper's ~11x sequential speedup);
  /// with false every iteration pays its own transfers.
  struct FilterResult {
    OpBreakdown ops;
    int kernels = 0;
    IntArray last_output;
  };
  FilterResult run_cuda_filter(bool horizontal, int iterations, int exec_iterations,
                               bool resident_data = true);

  /// SAC-Seq: the same compiled function on the sequential host model.
  struct SeqResult {
    double h_us = 0;
    double v_us = 0;
    IntArray last_output;
    double total_us() const { return h_us + v_us; }
  };
  SeqResult run_seq(int iterations, int exec_iterations);

 private:
  DownscalerConfig cfg_;
  Options opts_;
  sac::Module module_;
  sac::CompiledFunction h_fn_;
  sac::CompiledFunction v_fn_;
  sac_cuda::CudaProgram h_prog_;
  sac_cuda::CudaProgram v_prog_;
};

/// The GASPARD2-side experiment driver: ArrayOL model -> OpenCL chain,
/// run over the frame loop (Table I).
class GaspardDownscaler {
 public:
  struct Options {
    gpu::DeviceSpec device = gpu::gtx480();
    unsigned workers = 0;
    /// Execution backend of the internally constructed VirtualGpu (see
    /// SacDownscaler::Options::backend).
    gpu::BackendKind backend = gpu::BackendKind::Sim;
    bool rgb = true;  ///< full 3-channel model (the paper's Figure 3)
    /// Run each frame over three OpenCL command queues (upload /
    /// compute / download) so neighbouring frames' transfers overlap
    /// this frame's kernels, double-buffered. Bit-exact vs the
    /// single-queue path.
    bool async_streams = false;
    bool capture_trace = false;  ///< fill Result::trace_json
    /// Transformation-optimizer level applied to the ArrayOL model
    /// before code generation (see opt/search.hpp): 0 = the paper's
    /// unfused chain, 1 = fusion (+ enabling paving changes), 2 = also
    /// merge independent channels. Every level is bit-exact vs level 0.
    int opt_level = 0;
  };

  GaspardDownscaler(const DownscalerConfig& config, const Options& options);

  const gaspard::OpenClApplication& application() const { return app_; }
  /// Rewrites the optimizer applied at construction (empty at opt_level
  /// 0 or when nothing was profitable).
  const std::vector<opt::AppliedRewrite>& rewrites() const { return rewrites_; }
  /// Kernels launched per frame after optimization.
  int kernel_count() const { return static_cast<int>(app_.kernels().size()); }

  struct Result {
    OpBreakdown h;  ///< all *hf kernels
    OpBreakdown v;  ///< all *vf kernels
    IntArray last_output;  ///< first output channel of the last executed frame
    std::string nvprof_table;
    double wall_us = 0;      ///< stream-timeline makespan of the frame loop
    std::string timeline;    ///< per-stream busy/overlap report
    std::string trace_json;  ///< Chrome trace (only with capture_trace)
    /// First frame not issued by this call (see
    /// SacDownscaler::CudaResult::next_frame).
    int next_frame = 0;
    double total_us() const { return h.total_us() + v.total_us(); }
  };

  Result run(int frames, int exec_frames);

  /// The same frame loop on a caller-provided device (see
  /// SacDownscaler::run_cuda_chain_on): all result fields are deltas of
  /// this call, so a fleet device can serve many jobs back to back.
  /// flush=false elides the trailing device-wide synchronize between
  /// members of a coalesced batch — functional results are already
  /// complete (execution is immediate in issue order), and the
  /// simulated timeline is unchanged either way (ordering across calls
  /// is carried by buffer hazards, not the barrier).
  /// `first_frame`/`gate` are the scheduler's preemption points (see
  /// FrameGate): the loop covers [first_frame, frames) and may stop at
  /// a frame boundary.
  Result run_on(gpu::VirtualGpu& gpu, int frames, int exec_frames,
                const FrameCallback& on_frame = {}, bool flush = true, int first_frame = 0,
                const FrameGate& gate = {});

 private:
  DownscalerConfig cfg_;
  Options opts_;
  std::vector<opt::AppliedRewrite> rewrites_;  // before app_: ctor fills it while building
  gaspard::OpenClApplication app_;
};

/// Renders a Table I/II-style report from per-filter breakdowns.
std::string nvprof_style_table(const std::string& h_label, const OpBreakdown& h,
                               const std::string& v_label, const OpBreakdown& v);

}  // namespace saclo::apps
