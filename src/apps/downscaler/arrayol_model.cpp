#include "apps/downscaler/arrayol_model.hpp"

#include "core/fmt.hpp"

namespace saclo::apps {

using aol::ElementaryOp;
using aol::Model;
using aol::RepetitiveTask;
using aol::TiledPort;

aol::ElementaryOp downscale_op(const FilterSpec& spec) {
  ElementaryOp op;
  op.name = cat("downscale", spec.window, "tap");
  const std::vector<std::int64_t> starts = spec.window_starts;
  const std::int64_t window = spec.window;
  op.compute = [starts, window](std::span<const std::int64_t> in,
                                std::span<std::int64_t> out) {
    for (std::size_t k = 0; k < starts.size(); ++k) {
      std::int64_t tmp = 0;
      for (std::int64_t w = 0; w < window; ++w) {
        tmp += in[static_cast<std::size_t>(starts[k] + w)];
      }
      out[k] = tmp / window - tmp % window;
    }
  };
  // Per invocation: window adds + div/mod/sub per output.
  op.flops_per_invocation =
      static_cast<double>(starts.size()) * (static_cast<double>(window) + 3.0);
  std::string body;
  for (std::size_t k = 0; k < starts.size(); ++k) {
    std::string sum;
    for (std::int64_t w = 0; w < window; ++w) {
      sum += (w ? " + " : "") + cat("in[", starts[k] + w, "]");
    }
    body += cat("int tmp", k, " = ", sum, "; out[", k, "] = tmp", k, " / ", window, " - tmp", k,
                " % ", window, ";");
    if (k + 1 < starts.size()) body += " ";
  }
  op.c_body = std::move(body);
  return op;
}

namespace {

void add_channel(Model& model, const DownscalerConfig& cfg, const std::string& prefix) {
  const Shape frame = cfg.frame_shape();
  const Shape mid = cfg.mid_shape();
  const Shape out = cfg.out_shape();
  const std::string frame_name = "frame_" + prefix;
  const std::string mid_name = "mid_" + prefix;
  const std::string out_name = "out_" + prefix;
  model.add_array(frame_name, frame);
  model.add_array(mid_name, mid);
  model.add_array(out_name, out);
  model.mark_input(frame_name);
  model.mark_output(out_name);

  // Horizontal filter task (the paper's Figure 10 tiler specification).
  {
    RepetitiveTask task;
    task.name = prefix + "hf";
    task.repetition = cfg.h_repetition();
    TiledPort in;
    in.port = {frame_name, frame};
    in.pattern = Shape{cfg.h.in_pattern};
    in.tiler.origin = {0, 0};
    in.tiler.fitting = IntMat{{0}, {1}};
    in.tiler.paving = IntMat{{1, 0}, {0, cfg.h.paving}};
    task.inputs.push_back(std::move(in));
    TiledPort o;
    o.port = {mid_name, mid};
    o.pattern = Shape{cfg.h.tile()};
    o.tiler.origin = {0, 0};
    o.tiler.fitting = IntMat{{0}, {1}};
    o.tiler.paving = IntMat{{1, 0}, {0, cfg.h.tile()}};
    task.outputs.push_back(std::move(o));
    task.op = downscale_op(cfg.h);
    model.add_task(std::move(task));
  }

  // Vertical filter task (transposed tilers).
  {
    RepetitiveTask task;
    task.name = prefix + "vf";
    task.repetition = cfg.v_repetition();
    TiledPort in;
    in.port = {mid_name, mid};
    in.pattern = Shape{cfg.v.in_pattern};
    in.tiler.origin = {0, 0};
    in.tiler.fitting = IntMat{{1}, {0}};
    in.tiler.paving = IntMat{{cfg.v.paving, 0}, {0, 1}};
    task.inputs.push_back(std::move(in));
    TiledPort o;
    o.port = {out_name, out};
    o.pattern = Shape{cfg.v.tile()};
    o.tiler.origin = {0, 0};
    o.tiler.fitting = IntMat{{1}, {0}};
    o.tiler.paving = IntMat{{cfg.v.tile(), 0}, {0, 1}};
    task.outputs.push_back(std::move(o));
    task.op = downscale_op(cfg.v);
    model.add_task(std::move(task));
  }
}

}  // namespace

Model build_downscaler_model(const DownscalerConfig& cfg) {
  cfg.validate();
  Model model("Downscaler");
  // The paper's channel order: b, g, r (bhf / ghf / rhf).
  for (const std::string& prefix : {"b", "g", "r"}) {
    add_channel(model, cfg, prefix);
  }
  model.validate();
  return model;
}

namespace {

aol::RepetitiveTask make_hf_task(const DownscalerConfig& cfg, const std::string& in_array,
                                 const std::string& out_array) {
  RepetitiveTask task;
  task.name = "hf";
  task.repetition = cfg.h_repetition();
  TiledPort in;
  in.port = {in_array, cfg.frame_shape()};
  in.pattern = Shape{cfg.h.in_pattern};
  in.tiler.origin = {0, 0};
  in.tiler.fitting = IntMat{{0}, {1}};
  in.tiler.paving = IntMat{{1, 0}, {0, cfg.h.paving}};
  task.inputs.push_back(std::move(in));
  TiledPort o;
  o.port = {out_array, cfg.mid_shape()};
  o.pattern = Shape{cfg.h.tile()};
  o.tiler.origin = {0, 0};
  o.tiler.fitting = IntMat{{0}, {1}};
  o.tiler.paving = IntMat{{1, 0}, {0, cfg.h.tile()}};
  task.outputs.push_back(std::move(o));
  task.op = downscale_op(cfg.h);
  return task;
}

aol::RepetitiveTask make_vf_task(const DownscalerConfig& cfg, const std::string& in_array,
                                 const std::string& out_array) {
  RepetitiveTask task;
  task.name = "vf";
  task.repetition = cfg.v_repetition();
  TiledPort in;
  in.port = {in_array, cfg.mid_shape()};
  in.pattern = Shape{cfg.v.in_pattern};
  in.tiler.origin = {0, 0};
  in.tiler.fitting = IntMat{{1}, {0}};
  in.tiler.paving = IntMat{{cfg.v.paving, 0}, {0, 1}};
  task.inputs.push_back(std::move(in));
  TiledPort o;
  o.port = {out_array, cfg.out_shape()};
  o.pattern = Shape{cfg.v.tile()};
  o.tiler.origin = {0, 0};
  o.tiler.fitting = IntMat{{1}, {0}};
  o.tiler.paving = IntMat{{cfg.v.tile(), 0}, {0, 1}};
  task.outputs.push_back(std::move(o));
  task.op = downscale_op(cfg.v);
  return task;
}

}  // namespace

aol::HierarchicalModel build_hierarchical_downscaler(const DownscalerConfig& cfg) {
  cfg.validate();
  aol::HierarchicalModel hm("Downscaler");

  // HorizontalFilter: one repetitive task behind frame/mid ports.
  {
    aol::Component& c = hm.define("HorizontalFilter");
    c.add_array("in", cfg.frame_shape());
    c.add_array("out", cfg.mid_shape());
    c.mark_input("in");
    c.mark_output("out");
    c.add_task(make_hf_task(cfg, "in", "out"));
  }
  // VerticalFilter.
  {
    aol::Component& c = hm.define("VerticalFilter");
    c.add_array("in", cfg.mid_shape());
    c.add_array("out", cfg.out_shape());
    c.mark_input("in");
    c.mark_output("out");
    c.add_task(make_vf_task(cfg, "in", "out"));
  }
  // Channel: H then V around an internal intermediate array.
  {
    aol::Component& c = hm.define("Channel");
    c.add_array("frame", cfg.frame_shape());
    c.add_array("mid", cfg.mid_shape());
    c.add_array("scaled", cfg.out_shape());
    c.mark_input("frame");
    c.mark_output("scaled");
    c.add_instance(aol::Instance{"h", "HorizontalFilter", {{"in", "frame"}, {"out", "mid"}}});
    c.add_instance(aol::Instance{"v", "VerticalFilter", {{"in", "mid"}, {"out", "scaled"}}});
  }
  // Downscaler root: one Channel per colour (the paper's b/g/r order).
  {
    aol::Component& c = hm.define("Downscaler");
    for (const std::string ch : {"b", "g", "r"}) {
      c.add_array("frame_" + ch, cfg.frame_shape());
      c.add_array("out_" + ch, cfg.out_shape());
      c.mark_input("frame_" + ch);
      c.mark_output("out_" + ch);
      c.add_instance(
          aol::Instance{ch, "Channel", {{"frame", "frame_" + ch}, {"scaled", "out_" + ch}}});
    }
  }
  return hm;
}

Model build_single_channel_model(const DownscalerConfig& cfg) {
  cfg.validate();
  Model model("Downscaler1C");
  add_channel(model, cfg, "y");
  model.validate();
  return model;
}

}  // namespace saclo::apps
