#include "apps/downscaler/config.hpp"

#include "core/fmt.hpp"

namespace saclo::apps {

namespace {

void validate_filter(const FilterSpec& f, std::int64_t extent, const char* which) {
  if (f.paving <= 0 || f.in_pattern <= 0 || f.window <= 0) {
    throw Error(cat(which, " filter has non-positive geometry"));
  }
  if (extent % f.paving != 0) {
    throw Error(cat(which, " filter paving ", f.paving, " does not divide extent ", extent));
  }
  if (f.window_starts.empty()) {
    throw Error(cat(which, " filter has no output windows"));
  }
  for (std::int64_t s : f.window_starts) {
    if (s < 0 || s + f.window > f.in_pattern) {
      throw Error(cat(which, " filter window at ", s, " exceeds the input pattern of ",
                      f.in_pattern));
    }
  }
}

}  // namespace

void DownscalerConfig::validate() const {
  if (height <= 0 || width <= 0) throw Error("non-positive frame dimensions");
  validate_filter(h, width, "horizontal");
  validate_filter(v, height, "vertical");
}

DownscalerConfig DownscalerConfig::tiny() {
  DownscalerConfig c;
  c.height = 18;
  c.width = 32;
  c.validate();
  return c;
}

DownscalerConfig DownscalerConfig::small() {
  DownscalerConfig c;
  c.height = 180;
  c.width = 256;
  c.validate();
  return c;
}

DownscalerConfig DownscalerConfig::paper() {
  DownscalerConfig c;
  c.validate();
  return c;
}

}  // namespace saclo::apps
