#include "apps/downscaler/sac_source.hpp"

#include "core/fmt.hpp"

namespace saclo::apps {

namespace {

/// Figure 5: one `tmp = sum of window; tile[k] = tmp/6 - tmp%6;` pair
/// per output window.
std::string emit_task(const std::string& name, const FilterSpec& f) {
  std::string s;
  s += "int[*] " + name + "(int[*] input, int[.] out_pattern, int[.] repetition)\n{\n";
  s += "  output = with {\n";
  s += "    (. <= rep <= .) {\n";
  s += "      tile = with { (. <= pv <= .) : 0; } : genarray( out_pattern, 0);\n";
  for (std::size_t k = 0; k < f.window_starts.size(); ++k) {
    const std::int64_t s0 = f.window_starts[k];
    std::string sum;
    for (std::int64_t w = 0; w < f.window; ++w) {
      sum += (w ? " + " : "") + cat("input[rep][", s0 + w, "]");
    }
    s += cat("      tmp", k, " = ", sum, ";\n");
    s += cat("      tile[", k, "] = tmp", k, " / ", f.window, " - tmp", k, " % ", f.window,
             ";\n");
  }
  s += "    } : tile;\n";
  s += "  } : genarray( repetition);\n";
  s += "  return( output);\n}\n\n";
  return s;
}

/// Figure 7, generalised to both scatter directions: `horizontal`
/// scatters tiles along columns (step [1,T]), vertical along rows
/// (step [T,1]).
std::string emit_nongeneric_output_tiler(const std::string& name, std::int64_t tile,
                                         bool horizontal) {
  std::string s;
  s += "int[*] " + name + "(int[*] output, int[*] input)\n{\n";
  s += "  output = with {\n";
  for (std::int64_t c = 0; c < tile; ++c) {
    if (horizontal) {
      s += cat("    ([0,", c, "] <= [i,j] <= . step [1,", tile, "]) : input[[i, j / ", tile,
               ", ", c, "]];\n");
    } else {
      s += cat("    ([", c, ",0] <= [i,j] <= . step [", tile, ",1]) : input[[i / ", tile,
               ", j, ", c, "]];\n");
    }
  }
  s += "  } : modarray( output);\n";
  s += "  return( output);\n}\n\n";
  return s;
}

std::string filter_body(const DownscalerConfig& cfg, bool horizontal, bool generic) {
  const FilterSpec& f = horizontal ? cfg.h : cfg.v;
  // Geometry literals.
  const std::string rep = horizontal
                              ? cat("[", cfg.height, ",", cfg.width / f.paving, "]")
                              : cat("[", cfg.height / f.paving, ",", cfg.mid_width(), "]");
  const std::string in_fitting = horizontal ? "[[0],[1]]" : "[[1],[0]]";
  const std::string in_paving = horizontal ? cat("[[1,0],[0,", f.paving, "]]")
                                           : cat("[[", f.paving, ",0],[0,1]]");
  const std::string out_fitting = in_fitting;
  const std::string out_paving = horizontal ? cat("[[1,0],[0,", f.tile(), "]]")
                                            : cat("[[", f.tile(), ",0],[0,1]]");
  const std::int64_t out_h = horizontal ? cfg.height : cfg.out_height();
  const std::int64_t out_w = horizontal ? cfg.mid_width() : cfg.mid_width();
  const std::string task = horizontal ? "task_h" : "task_v";
  const std::string out_tiler =
      horizontal ? "nongeneric_output_tiler_h" : "nongeneric_output_tiler_v";

  std::string s;
  s += cat("  gathered = input_tiler(frame, [", f.in_pattern, "], ", rep, ", [0,0], ",
           in_fitting, ", ", in_paving, ");\n");
  s += cat("  compressed = ", task, "(gathered, [", f.tile(), "], ", rep, ");\n");
  s += cat("  base = zeros(", out_h, ", ", out_w, ");\n");
  if (generic) {
    s += cat("  output = generic_output_tiler(base, compressed, [", f.tile(), "], ", rep,
             ", [0,0], ", out_fitting, ", ", out_paving, ");\n");
  } else {
    s += cat("  output = ", out_tiler, "(base, compressed);\n");
  }
  s += "  return( output);\n";
  return s;
}

}  // namespace

std::string downscaler_sac_source(const DownscalerConfig& cfg) {
  cfg.validate();
  std::string s;

  s += R"(// Generated mini-SaC downscaler (paper Figures 4-7).

int[*] zeros(int h, int w) {
  z = with { ([0,0] <= iv < [h,w]) : 0; } : genarray([h,w]);
  return (z);
}

int[*] input_tiler(int[*] in_frame, int[.] in_pattern, int[.] repetition,
                   int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  output = with {
    (. <= rep <= .) {
      tile = with {
        (. <= pat <= .) {
          off = origin + MV( CAT( paving, fitting), rep++pat);
          iv = off % shape(in_frame);
          elem = in_frame[iv];
        } : elem;
      } : genarray( in_pattern, 0);
    } : tile;
  } : genarray( repetition);
  return( output);
}

int[*] generic_output_tiler(int[*] out_frame, int[*] input,
                            int[.] out_pattern, int[.] repetition,
                            int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  for( i=0; i< repetition[[0]]; i++) {
    for( j=0; j< repetition[[1]]; j++) {
      for( k=0; k< out_pattern[[0]]; k++) {
        off = origin + MV( CAT(paving, fitting), [i,j,k]);
        iv = off % shape( out_frame);
        out_frame[iv] = input[[i,j,k]];
      }
    }
  }
  return( out_frame);
}

)";

  s += emit_task("task_h", cfg.h);
  s += emit_task("task_v", cfg.v);
  s += emit_nongeneric_output_tiler("nongeneric_output_tiler_h", cfg.h.tile(),
                                    /*horizontal=*/true);
  s += emit_nongeneric_output_tiler("nongeneric_output_tiler_v", cfg.v.tile(),
                                    /*horizontal=*/false);

  s += "int[*] hfilter_generic(int[*] frame)\n{\n" + filter_body(cfg, true, true) + "}\n\n";
  s += "int[*] hfilter_nongeneric(int[*] frame)\n{\n" + filter_body(cfg, true, false) + "}\n\n";
  s += "int[*] vfilter_generic(int[*] frame)\n{\n" + filter_body(cfg, false, true) + "}\n\n";
  s += "int[*] vfilter_nongeneric(int[*] frame)\n{\n" + filter_body(cfg, false, false) + "}\n\n";

  s += R"(int[*] downscale_nongeneric(int[*] in_frame) {
  mid = hfilter_nongeneric(in_frame);
  out = vfilter_nongeneric(mid);
  return (out);
}

int[*] downscale_generic(int[*] in_frame) {
  mid = hfilter_generic(in_frame);
  out = vfilter_generic(mid);
  return (out);
}
)";
  return s;
}

}  // namespace saclo::apps
