#pragma once

#include <string>

#include "core/ndarray.hpp"

namespace saclo::apps {

/// Synthetic video source — the stand-in for the paper's OpenCV-backed
/// FrameGenerator IP (we have no camera or video file; only the array
/// shapes and value ranges matter to the evaluation). Produces a
/// deterministic moving test pattern, 8-bit range per channel.
IntArray synthetic_channel(const Shape& shape, int frame_index, int channel);

struct RgbFrame {
  IntArray r;
  IntArray g;
  IntArray b;
};

RgbFrame synthetic_frame(const Shape& shape, int frame_index);

/// FrameConstructor stand-in: writes a binary PPM (P6) image so example
/// outputs can be eyeballed. Values are clamped to [0, 255].
void write_ppm(const std::string& path, const RgbFrame& frame);

}  // namespace saclo::apps
