#pragma once

#include "apps/downscaler/config.hpp"
#include "arrayol/hierarchy.hpp"
#include "arrayol/model.hpp"

namespace saclo::apps {

/// The elementary downscale IP of one filter: averages `window`
/// consecutive inputs per output window (the paper's
/// `tmp/6 - tmp%6` computation).
aol::ElementaryOp downscale_op(const FilterSpec& spec);

/// Builds the paper's downscaler application model (Figure 3/10): per
/// RGB channel one horizontal-filter task (bhf/ghf/rhf) and one
/// vertical-filter task (bvf/gvf/rvf), connected through intermediate
/// arrays. Inputs: frame_r/g/b; outputs: out_r/g/b.
aol::Model build_downscaler_model(const DownscalerConfig& config);

/// Single-channel variant (used by tests and the quickstart example).
aol::Model build_single_channel_model(const DownscalerConfig& config);

/// The paper's full hierarchical structure (Figure 3): a Downscaler
/// component instantiating one Channel component per RGB channel, each
/// of which instantiates HorizontalFilter and VerticalFilter
/// components around an internal intermediate array. flatten() yields
/// a model equivalent to build_downscaler_model().
aol::HierarchicalModel build_hierarchical_downscaler(const DownscalerConfig& config);

}  // namespace saclo::apps
