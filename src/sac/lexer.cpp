#include "sac/lexer.hpp"

#include <cctype>
#include <map>

#include "core/fmt.hpp"

namespace saclo::sac {

std::string to_string(Tok t) {
  switch (t) {
    case Tok::End: return "<end>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::KwWith: return "'with'";
    case Tok::KwGenarray: return "'genarray'";
    case Tok::KwModarray: return "'modarray'";
    case Tok::KwFold: return "'fold'";
    case Tok::KwStep: return "'step'";
    case Tok::KwWidth: return "'width'";
    case Tok::KwFor: return "'for'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwInt: return "'int'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwBool: return "'bool'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Dot: return "'.'";
    case Tok::Star: return "'*'";
    case Tok::Plus: return "'+'";
    case Tok::PlusPlus: return "'++'";
    case Tok::Minus: return "'-'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Assign: return "'='";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::Not: return "'!'";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"with", Tok::KwWith},     {"genarray", Tok::KwGenarray},
      {"modarray", Tok::KwModarray}, {"fold", Tok::KwFold},
      {"step", Tok::KwStep},
      {"width", Tok::KwWidth},   {"for", Tok::KwFor},
      {"if", Tok::KwIf},         {"else", Tok::KwElse},
      {"return", Tok::KwReturn}, {"int", Tok::KwInt},
      {"float", Tok::KwFloat},   {"bool", Tok::KwBool},
      {"true", Tok::KwTrue},     {"false", Tok::KwFalse},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < n ? source[i + off] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto push = [&](Tok kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < n && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= n) throw ParseError(cat("unterminated comment at line ", line));
      advance();
      advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const int start_line = line, start_col = col;
      std::string word;
      while (i < n &&
             (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        word += peek();
        advance();
      }
      Token t;
      auto it = keywords().find(word);
      t.kind = it == keywords().end() ? Tok::Ident : it->second;
      t.text = std::move(word);
      t.line = start_line;
      t.col = start_col;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const int start_line = line, start_col = col;
      std::string num;
      while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
        num += peek();
        advance();
      }
      bool is_float = false;
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        num += peek();
        advance();
        while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      Token t;
      t.line = start_line;
      t.col = start_col;
      t.text = num;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_val = std::stod(num);
      } else {
        t.kind = Tok::IntLit;
        t.int_val = std::stoll(num);
      }
      tokens.push_back(std::move(t));
      continue;
    }

    auto two = [&](char second) { return peek(1) == second; };
    switch (c) {
      case '(': push(Tok::LParen, "("); advance(); break;
      case ')': push(Tok::RParen, ")"); advance(); break;
      case '[': push(Tok::LBracket, "["); advance(); break;
      case ']': push(Tok::RBracket, "]"); advance(); break;
      case '{': push(Tok::LBrace, "{"); advance(); break;
      case '}': push(Tok::RBrace, "}"); advance(); break;
      case ',': push(Tok::Comma, ","); advance(); break;
      case ';': push(Tok::Semi, ";"); advance(); break;
      case ':': push(Tok::Colon, ":"); advance(); break;
      case '.': push(Tok::Dot, "."); advance(); break;
      case '*': push(Tok::Star, "*"); advance(); break;
      case '%': push(Tok::Percent, "%"); advance(); break;
      case '/': push(Tok::Slash, "/"); advance(); break;
      case '+':
        if (two('+')) {
          push(Tok::PlusPlus, "++");
          advance();
          advance();
        } else {
          push(Tok::Plus, "+");
          advance();
        }
        break;
      case '-': push(Tok::Minus, "-"); advance(); break;
      case '=':
        if (two('=')) {
          push(Tok::Eq, "==");
          advance();
          advance();
        } else {
          push(Tok::Assign, "=");
          advance();
        }
        break;
      case '!':
        if (two('=')) {
          push(Tok::Ne, "!=");
          advance();
          advance();
        } else {
          push(Tok::Not, "!");
          advance();
        }
        break;
      case '<':
        if (two('=')) {
          push(Tok::Le, "<=");
          advance();
          advance();
        } else {
          push(Tok::Lt, "<");
          advance();
        }
        break;
      case '>':
        if (two('=')) {
          push(Tok::Ge, ">=");
          advance();
          advance();
        } else {
          push(Tok::Gt, ">");
          advance();
        }
        break;
      case '&':
        if (two('&')) {
          push(Tok::AndAnd, "&&");
          advance();
          advance();
        } else {
          throw ParseError(cat("stray '&' at line ", line, ":", col));
        }
        break;
      case '|':
        if (two('|')) {
          push(Tok::OrOr, "||");
          advance();
          advance();
        } else {
          throw ParseError(cat("stray '|' at line ", line, ":", col));
        }
        break;
      default:
        throw ParseError(cat("unexpected character '", std::string(1, c), "' at line ", line,
                             ":", col));
    }
  }

  Token end;
  end.kind = Tok::End;
  end.line = line;
  end.col = col;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace saclo::sac
