#pragma once

#include <variant>

#include "core/fmt.hpp"
#include "core/ndarray.hpp"

namespace saclo::sac {

/// A runtime value of the mini-SaC interpreter.
///
/// SaC is an array language: *every* value is a multidimensional array,
/// scalars being rank-0 arrays. The paper's programs are integral, but
/// the language also carries doubles for the extra examples.
class Value {
 public:
  Value() : v_(IntArray::scalar(0)) {}
  /*implicit*/ Value(IntArray a) : v_(std::move(a)) {}
  /*implicit*/ Value(FloatArray a) : v_(std::move(a)) {}

  static Value from_int(std::int64_t i) { return Value(IntArray::scalar(i)); }
  static Value from_double(double d) { return Value(FloatArray::scalar(d)); }
  static Value from_bool(bool b) { return from_int(b ? 1 : 0); }

  bool is_int() const { return std::holds_alternative<IntArray>(v_); }
  bool is_float() const { return std::holds_alternative<FloatArray>(v_); }

  IntArray& ints() { return std::get<IntArray>(v_); }
  const IntArray& ints() const { return std::get<IntArray>(v_); }
  FloatArray& floats() { return std::get<FloatArray>(v_); }
  const FloatArray& floats() const { return std::get<FloatArray>(v_); }

  const Shape& shape() const {
    return is_int() ? ints().shape() : floats().shape();
  }
  bool is_scalar() const { return shape().rank() == 0; }

  /// The scalar payload of a rank-0 (or single-element) int value.
  std::int64_t as_int() const {
    if (!is_int()) throw Error("expected an integer value");
    if (ints().elements() != 1) {
      throw Error(cat("expected a scalar, got shape ", shape().to_string()));
    }
    return ints()[0];
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(as_int());
    if (floats().elements() != 1) {
      throw Error(cat("expected a scalar, got shape ", shape().to_string()));
    }
    return floats()[0];
  }
  bool as_bool() const { return as_int() != 0; }

  /// Converts a rank-<=1 int value to an index vector (shape-like
  /// values: `[1080, 1920]`). A scalar becomes a 1-element vector.
  Index as_index_vector() const {
    const IntArray& a = ints();
    if (a.shape().rank() > 1) {
      throw Error(cat("expected an index vector, got shape ", shape().to_string()));
    }
    Index out(static_cast<std::size_t>(a.elements()));
    for (std::int64_t i = 0; i < a.elements(); ++i) out[static_cast<std::size_t>(i)] = a[i];
    return out;
  }

  bool operator==(const Value& other) const = default;

 private:
  std::variant<IntArray, FloatArray> v_;
};

}  // namespace saclo::sac
