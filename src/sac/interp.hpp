#pragma once

#include <map>
#include <string>
#include <vector>

#include "sac/ast.hpp"
#include "sac/builtins.hpp"
#include "sac/value.hpp"

namespace saclo::sac {

/// The reference interpreter: a direct implementation of mini-SaC's
/// semantics. Every compiled artefact (the sequential lowering, the
/// CUDA backend on the simulated GPU, and the folded programs) is
/// tested bit-exact against this.
///
/// It also counts abstract operations (scalar arithmetic + array
/// element reads/writes), which the host cost model converts into
/// simulated sequential runtimes (see gpu::HostSpec).
class Interp {
 public:
  explicit Interp(const Module& mod) : mod_(&mod) {}

  /// Calls a function by name with the given argument values.
  Value call(const std::string& fn, std::vector<Value> args);

  /// Evaluates a closed expression (no free variables).
  Value eval_closed(const Expr& expr);

  /// Executes top-level statements against a mutable variable
  /// environment (used by the CUDA backend's host-fallback steps, which
  /// interleave interpreted statements with simulated kernels).
  /// Returns the value of a `return` statement if one executed.
  std::optional<Value> exec_stmts(const std::vector<StmtPtr>& stmts,
                                  std::map<std::string, Value>& vars);

  /// Abstract operations executed so far (monotonic).
  double ops() const { return ops_; }
  void reset_ops() { ops_ = 0; }

 private:
  friend class Scope;

  struct Env {
    struct Scope {
      std::map<std::string, Value> vars;
      /// Barrier scopes (with-loop generator bodies, function frames)
      /// stop outward assignment: writes from inside them never mutate
      /// enclosing bindings, preserving single-assignment semantics.
      bool barrier = false;
    };
    std::vector<Scope> scopes;
    Value* find(const std::string& name);
    void define(const std::string& name, Value v);
    void assign(const std::string& name, Value v);
    void push(bool barrier) { scopes.push_back(Scope{{}, barrier}); }
    void pop() { scopes.pop_back(); }
  };

  Value eval(const Expr& expr, Env& env);
  Value eval_with(const Expr& expr, Env& env);
  /// Executes statements; returns true as soon as a (possibly nested)
  /// return statement fired, with the value stored in *returned.
  bool exec_block(const std::vector<StmtPtr>& block, Env& env, Value* returned);
  bool exec(const Stmt& stmt, Env& env, Value* returned);
  Value eval_binop(const Expr& expr, Env& env);
  Value eval_select(const Expr& expr, Env& env);
  void elem_assign(Value& target, const std::vector<ExprPtr>& indices, const Value& rhs,
                   Env& env);

  /// Resolves generator bounds/step/width to concrete index vectors.
  struct GenBounds {
    Index lower;
    Index upper;  // exclusive
    Index step;
    Index width;
  };
  GenBounds resolve_generator(const Generator& g, const Shape& frame, Env& env);

  const Module* mod_;
  double ops_ = 0;
};

/// Convenience: parse nothing, just run `fn` of `mod` on `args`.
Value run_function(const Module& mod, const std::string& fn, std::vector<Value> args);

}  // namespace saclo::sac
