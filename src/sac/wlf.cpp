#include "sac/wlf.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "core/fmt.hpp"
#include "sac/builtins.hpp"
#include "sac/interp.hpp"
#include "sac/specialize.hpp"

namespace saclo::sac {

namespace {

using affine::AffineEval;
using affine::Box;
using affine::DimRegion;
using affine::Lattice;
using affine::Lin;

// --- generic AST walking -------------------------------------------------------

void visit_exprs(Expr& e, const std::function<void(Expr&)>& fn);

void visit_exprs(Stmt& s, const std::function<void(Expr&)>& fn) {
  for (ExprPtr& i : s.indices) {
    if (i) visit_exprs(*i, fn);
  }
  if (s.value) visit_exprs(*s.value, fn);
  if (s.for_init) visit_exprs(*s.for_init, fn);
  if (s.for_cond) visit_exprs(*s.for_cond, fn);
  if (s.for_step) visit_exprs(*s.for_step, fn);
  for (StmtPtr& c : s.body) visit_exprs(*c, fn);
  for (StmtPtr& c : s.else_body) visit_exprs(*c, fn);
}

void visit_exprs(Expr& e, const std::function<void(Expr&)>& fn) {
  fn(e);
  for (ExprPtr& a : e.args) {
    if (a) visit_exprs(*a, fn);
  }
  for (Generator& g : e.generators) {
    if (g.lower) visit_exprs(*g.lower, fn);
    if (g.upper) visit_exprs(*g.upper, fn);
    if (g.step) visit_exprs(*g.step, fn);
    if (g.width) visit_exprs(*g.width, fn);
    for (StmtPtr& s : g.body) visit_exprs(*s, fn);
    if (g.value) visit_exprs(*g.value, fn);
  }
  if (e.op.shape_or_target) visit_exprs(*e.op.shape_or_target, fn);
  if (e.op.default_value) visit_exprs(*e.op.default_value, fn);
}

void count_var_uses(const Expr& e, std::map<std::string, int>& uses) {
  visit_exprs(const_cast<Expr&>(e), [&](Expr& x) {
    if (x.kind == ExprKind::Var) ++uses[x.name];
  });
}

std::set<std::string> collect_defined_names(const std::vector<StmtPtr>& body, const Expr* value) {
  std::set<std::string> names;
  // Targets at this level plus generator variables and body targets of
  // nested with-loops (they are all locals of the cloned region).
  for (const StmtPtr& s : body) {
    if (!s->target.empty()) names.insert(s->target);
    Stmt& ms = const_cast<Stmt&>(*s);
    visit_exprs(ms, [&](Expr& x) {
      for (const Generator& g : x.generators) {
        for (const std::string& v : g.vars) names.insert(v);
        for (const StmtPtr& bs : g.body) {
          if (!bs->target.empty()) names.insert(bs->target);
        }
      }
    });
  }
  if (value != nullptr) {
    visit_exprs(const_cast<Expr&>(*value), [&](Expr& x) {
      for (const Generator& g : x.generators) {
        for (const std::string& v : g.vars) names.insert(v);
        for (const StmtPtr& bs : g.body) {
          if (!bs->target.empty()) names.insert(bs->target);
        }
      }
    });
  }
  return names;
}

void apply_rename(Expr& e, const std::map<std::string, std::string>& rename) {
  visit_exprs(e, [&](Expr& x) {
    if (x.kind == ExprKind::Var) {
      auto it = rename.find(x.name);
      if (it != rename.end()) x.name = it->second;
    }
    for (Generator& g : x.generators) {
      for (std::string& v : g.vars) {
        auto it = rename.find(v);
        if (it != rename.end()) v = it->second;
      }
      for (StmtPtr& s : g.body) {
        auto it = rename.find(s->target);
        if (it != rename.end()) s->target = it->second;
      }
    }
  });
}

void apply_rename(std::vector<StmtPtr>& body, const std::map<std::string, std::string>& rename) {
  for (StmtPtr& s : body) {
    auto it = rename.find(s->target);
    if (it != rename.end()) s->target = it->second;
    visit_exprs(*s, [&](Expr& x) {
      if (x.kind == ExprKind::Var) {
        auto f = rename.find(x.name);
        if (f != rename.end()) x.name = f->second;
      }
      for (Generator& g : x.generators) {
        for (std::string& v : g.vars) {
          auto f = rename.find(v);
          if (f != rename.end()) v = f->second;
        }
        for (StmtPtr& bs : g.body) {
          auto f = rename.find(bs->target);
          if (f != rename.end()) bs->target = f->second;
        }
      }
    });
  }
}

}  // namespace

// --- concrete generators -------------------------------------------------------

std::int64_t ConcreteGen::points() const {
  std::int64_t n = 1;
  for (std::size_t d = 0; d < lb.size(); ++d) {
    if (ub[d] <= lb[d]) return 0;
    const std::int64_t span = ub[d] - lb[d];
    const std::int64_t tiles = (span + step[d] - 1) / step[d];
    const std::int64_t rem = span - (tiles - 1) * step[d];
    n *= (tiles - 1) * std::min(width[d], step[d]) + std::min(width[d], rem);
  }
  return n;
}

std::optional<ConcreteGen> concrete_generator(const Generator& g) {
  if (!g.lower || !g.upper) return std::nullopt;
  auto lo = literal_value(*g.lower);
  auto hi = literal_value(*g.upper);
  if (!lo || !hi || !lo->is_int() || !hi->is_int()) return std::nullopt;
  ConcreteGen out;
  out.lb = lo->as_index_vector();
  out.ub = hi->as_index_vector();
  if (!g.lower_inclusive) {
    for (auto& v : out.lb) ++v;
  }
  if (g.upper_inclusive) {
    for (auto& v : out.ub) ++v;
  }
  const std::size_t rank = out.lb.size();
  if (out.ub.size() != rank) return std::nullopt;
  if (g.step) {
    auto st = literal_value(*g.step);
    if (!st || !st->is_int()) return std::nullopt;
    out.step = st->as_index_vector();
    if (out.step.size() != rank) return std::nullopt;
  } else {
    out.step.assign(rank, 1);
  }
  if (g.width) {
    auto w = literal_value(*g.width);
    if (!w || !w->is_int()) return std::nullopt;
    out.width = w->as_index_vector();
    if (out.width.size() != rank) return std::nullopt;
  } else {
    out.width.assign(rank, 1);
  }
  // Normalise: width == step is a dense stride-1 range.
  for (std::size_t d = 0; d < rank; ++d) {
    if (out.width[d] == out.step[d]) {
      out.width[d] = 1;
      out.step[d] = 1;
    }
  }
  return out;
}

std::optional<Lattice> lattice_of(const Generator& g) {
  auto cg = concrete_generator(g);
  if (!cg) return std::nullopt;
  for (std::int64_t w : cg->width) {
    if (w != 1) return std::nullopt;
  }
  Lattice lat;
  lat.dims.reserve(cg->lb.size());
  for (std::size_t d = 0; d < cg->lb.size(); ++d) {
    Lattice::Dim dim;
    dim.lb = cg->lb[d];
    dim.step = cg->step[d];
    dim.extent = cg->ub[d] > cg->lb[d] ? (cg->ub[d] - 1 - cg->lb[d]) / cg->step[d] + 1 : 0;
    lat.dims.push_back(dim);
  }
  if (g.vector_var) {
    lat.vector_name = g.vars[0];
  } else {
    if (g.vars.size() != cg->lb.size()) return std::nullopt;
    lat.scalar_names = g.vars;
  }
  return lat;
}

OptStats& OptStats::operator+=(const OptStats& other) {
  folds += other.folds;
  generator_splits += other.generator_splits;
  mods_removed += other.mods_removed;
  modarrays_converted += other.modarrays_converted;
  stmts_removed += other.stmts_removed;
  return *this;
}

// --- the optimiser ----------------------------------------------------------------

namespace {

class Optimizer {
 public:
  OptStats stats;

  std::string fresh_name(const std::string& base) { return cat(base, "_w", counter_++); }

  // ---- generator-local simplification ------------------------------------

  /// True when the body is straight-line single-assignment (the form
  /// produced by the specialiser): only Assign/ElemAssign statements,
  /// every Assign target unique, every ElemAssign target previously
  /// Assign-ed in the body.
  static bool body_is_ssa(const std::vector<StmtPtr>& body) {
    std::set<std::string> assigned;
    for (const StmtPtr& s : body) {
      if (s->kind == StmtKind::Assign) {
        if (!assigned.insert(s->target).second) return false;
      } else if (s->kind == StmtKind::ElemAssign) {
        if (!assigned.count(s->target)) return false;
      } else {
        return false;
      }
    }
    return true;
  }

  /// The per-name relaxation of body_is_ssa: names that are assigned by
  /// exactly one top-level Assign of the body and never written any
  /// other way (no ElemAssign, no loop variable, no write in a nested
  /// block). Definition-forwarding rules apply only to these names, so
  /// they remain sound inside bodies that also contain loops or
  /// element assignments (e.g. the generic output tiler's for-nest).
  static std::set<std::string> compute_ssa_names(const std::vector<StmtPtr>& body) {
    std::map<std::string, int> top_assigns;
    std::set<std::string> excluded;
    std::function<void(const std::vector<StmtPtr>&, bool)> scan =
        [&](const std::vector<StmtPtr>& b, bool top) {
          for (const StmtPtr& s : b) {
            if (s->kind == StmtKind::Assign && top) {
              ++top_assigns[s->target];
            } else if (!s->target.empty()) {
              excluded.insert(s->target);
            }
            scan(s->body, false);
            scan(s->else_body, false);
          }
        };
    scan(body, true);
    std::set<std::string> out;
    for (const auto& [name, count] : top_assigns) {
      if (count == 1 && !excluded.count(name)) out.insert(name);
    }
    return out;
  }

  /// Replaces a vector index variable (`rep`) by destructured scalar
  /// components (`rep_0, rep_1, ...`), rewriting every use into an
  /// array literal of the components. This is what lets MV/CAT
  /// expansion, select-resolution and the kernel outliner see through
  /// whole-vector index arithmetic like `rep ++ pat`.
  void destructure_generator_var(Generator& g) {
    if (!g.vector_var || g.vars.empty()) return;
    auto cg = concrete_generator(g);
    if (!cg) return;
    const std::size_t rank = cg->lb.size();
    const std::string vec = g.vars[0];
    std::vector<std::string> comps;
    comps.reserve(rank);
    std::vector<ExprPtr> comp_vars;
    for (std::size_t d = 0; d < rank; ++d) {
      comps.push_back(fresh_name(vec));
      comp_vars.push_back(make_var(comps.back()));
    }
    auto replace = [&](Expr& root) {
      visit_exprs(root, [&](Expr& x) {
        if (x.kind != ExprKind::Var || x.name != vec) return;
        x.kind = ExprKind::ArrayLit;
        x.name.clear();
        x.args.clear();
        for (const ExprPtr& c : comp_vars) x.args.push_back(c->clone());
      });
    };
    for (StmtPtr& s : g.body) {
      if (s->value) replace(*s->value);
      for (ExprPtr& i : s->indices) {
        if (i) replace(*i);
      }
    }
    replace(*g.value);
    g.vector_var = false;
    g.vars = std::move(comps);
    changed_ = true;
  }

  void simplify_generator(Generator& g) {
    destructure_generator_var(g);
    for (int iter = 0; iter < 64; ++iter) {
      changed_ = false;
      ssa_names_ = compute_ssa_names(g.body);
      elem_chain_ok_.clear();
      if (body_is_ssa(g.body)) {
        for (const StmtPtr& bs : g.body) {
          if (bs->kind == StmtKind::Assign) elem_chain_ok_.insert(bs->target);
        }
      }
      uses_.clear();
      for (const StmtPtr& s : g.body) {
        visit_exprs(*s, [&](Expr& x) {
          if (x.kind == ExprKind::Var) ++uses_[x.name];
        });
      }
      count_var_uses(*g.value, uses_);

      // Rewrite statements in place (rules scan g.body, so it must stay
      // intact); remember hoisted statements and splice them in after.
      std::vector<std::pair<std::size_t, std::vector<StmtPtr>>> insertions;
      for (std::size_t i = 0; i < g.body.size(); ++i) {
        pending_.clear();
        Stmt& s = *g.body[i];
        if (s.value) s.value = rewrite(std::move(s.value), g);
        for (ExprPtr& ix : s.indices) {
          if (ix) ix = rewrite(std::move(ix), g);
        }
        if (s.for_init) s.for_init = rewrite(std::move(s.for_init), g);
        if (s.for_cond) s.for_cond = rewrite(std::move(s.for_cond), g);
        if (s.for_step) s.for_step = rewrite(std::move(s.for_step), g);
        if (!pending_.empty()) insertions.emplace_back(i, std::move(pending_));
        pending_.clear();
      }
      pending_.clear();
      g.value = rewrite(std::move(g.value), g);
      if (!pending_.empty()) insertions.emplace_back(g.body.size(), std::move(pending_));
      pending_.clear();
      if (!insertions.empty()) {
        std::vector<StmtPtr> new_body;
        std::size_t next = 0;
        for (std::size_t i = 0; i <= g.body.size(); ++i) {
          while (next < insertions.size() && insertions[next].first == i) {
            for (StmtPtr& p : insertions[next].second) new_body.push_back(std::move(p));
            ++next;
          }
          if (i < g.body.size()) new_body.push_back(std::move(g.body[i]));
        }
        g.body = std::move(new_body);
      }

      dce_generator_body(g);
      if (!changed_) break;
    }
  }

  void dce_generator_body(Generator& g) {
    // Liveness backwards from the value expression.
    std::set<std::string> live;
    count_uses_into(*g.value, live);
    std::vector<StmtPtr> kept;
    for (auto it = g.body.rbegin(); it != g.body.rend(); ++it) {
      Stmt& s = **it;
      bool keep = true;
      if (s.kind == StmtKind::Assign) {
        keep = live.count(s.target) > 0;
        if (keep) {
          live.erase(s.target);
          count_uses_into(*s.value, live);
        }
      } else if (s.kind == StmtKind::ElemAssign) {
        keep = live.count(s.target) > 0;
        if (keep) {
          for (const ExprPtr& i : s.indices) count_uses_into(*i, live);
          count_uses_into(*s.value, live);
          live.insert(s.target);  // the base definition is still needed
        }
      } else {
        // Conservative: keep non-straight-line statements and all their
        // uses.
        visit_exprs(s, [&](Expr& x) {
          if (x.kind == ExprKind::Var) live.insert(x.name);
        });
        live.insert(s.target);
      }
      if (keep) {
        kept.push_back(std::move(*it));
      } else {
        changed_ = true;
        ++stats.stmts_removed;
      }
    }
    std::reverse(kept.begin(), kept.end());
    g.body = std::move(kept);
  }

  static void count_uses_into(const Expr& e, std::set<std::string>& live) {
    visit_exprs(const_cast<Expr&>(e), [&](Expr& x) {
      if (x.kind == ExprKind::Var) live.insert(x.name);
    });
  }

  // ---- expression rewriting -------------------------------------------------

  ExprPtr rewrite(ExprPtr e, Generator& g) {
    // Bottom-up, but do not descend into nested with-loops (their
    // bodies belong to a different scope and are simplified when
    // inlined or by the top-level driver).
    if (e->kind != ExprKind::With) {
      for (ExprPtr& a : e->args) {
        if (a) a = rewrite(std::move(a), g);
      }
    }
    for (int guard = 0; guard < 32; ++guard) {
      ExprPtr next = apply_rules(*e, g);
      if (!next) break;
      changed_ = true;
      e = std::move(next);
      if (e->kind != ExprKind::With) {
        for (ExprPtr& a : e->args) {
          if (a) a = rewrite(std::move(a), g);
        }
      }
    }
    return e;
  }

  /// Returns the replacement expression or nullptr when no rule fires.
  ExprPtr apply_rules(Expr& e, Generator& g) {
    switch (e.kind) {
      case ExprKind::Select: return rules_select(e, g);
      case ExprKind::BinOp: return rules_binop(e);
      case ExprKind::Call: return rules_call(e);
      case ExprKind::Var: return rules_var(e, g);
      default: return nullptr;
    }
  }

  static std::optional<Index> lit_index(const Expr& e) {
    auto v = literal_value(e);
    if (!v || !v->is_int() || v->shape().rank() > 1) return std::nullopt;
    return v->shape().rank() == 0 ? Index{v->as_int()} : v->as_index_vector();
  }

  /// Wraps an index expression into ArrayLit form when possible.
  static ExprPtr as_index_array(ExprPtr idx) {
    if (idx->kind == ExprKind::ArrayLit) return idx;
    if (idx->kind == ExprKind::IntLit) {
      std::vector<ExprPtr> elems;
      elems.push_back(std::move(idx));
      return make_array_lit(std::move(elems));
    }
    return idx;
  }

  ExprPtr rules_select(Expr& e, Generator& g) {
    Expr& arr = *e.args[0];
    // Collapse a[i][j] -> a[i ++ j].
    if (arr.kind == ExprKind::Select) {
      ExprPtr inner_arr = std::move(arr.args[0]);
      ExprPtr i1 = as_index_array(std::move(arr.args[1]));
      ExprPtr i2 = as_index_array(std::move(e.args[1]));
      ExprPtr idx;
      if (i1->kind == ExprKind::ArrayLit && i2->kind == ExprKind::ArrayLit) {
        for (ExprPtr& a : i2->args) i1->args.push_back(std::move(a));
        idx = std::move(i1);
      } else {
        idx = make_bin(BinOpKind::Concat, std::move(i1), std::move(i2));
      }
      return make_select(std::move(inner_arr), std::move(idx));
    }
    auto idx = lit_index(*e.args[1]);
    if (!idx) return nullptr;
    if (arr.kind == ExprKind::ArrayLit) {
      if (idx->empty()) return nullptr;
      const std::int64_t c = (*idx)[0];
      if (c < 0 || c >= static_cast<std::int64_t>(arr.args.size())) return nullptr;
      ExprPtr elem = arr.args[static_cast<std::size_t>(c)]->clone();
      if (idx->size() == 1) return elem;
      return make_select(std::move(elem), make_index_lit(Index(idx->begin() + 1, idx->end())));
    }
    if (arr.kind == ExprKind::With) {
      return inline_with_at(arr, *idx, g);
    }
    if (arr.kind == ExprKind::Var &&
        (ssa_names_.count(arr.name) || elem_chain_ok_.count(arr.name))) {
      return select_through_var(arr.name, *idx, g);
    }
    return nullptr;
  }

  /// Resolves `w[idx]` for a with-loop value and a literal index:
  /// inlines the generator that covers the index (hoisting its body
  /// into the enclosing generator's body).
  ExprPtr inline_with_at(const Expr& w, const Index& idx, Generator& g) {
    std::size_t frame_rank = 0;
    if (w.op.kind == WithOpKind::Genarray) {
      auto shp = literal_value(*w.op.shape_or_target);
      if (!shp || !shp->is_int()) return nullptr;
      frame_rank = shp->as_index_vector().size();
    } else {
      // modarray: fall back to selecting from the target at uncovered
      // positions; handled below.
      if (!w.generators.empty() && !w.generators[0].vector_var) {
        frame_rank = w.generators[0].vars.size();
      } else {
        return nullptr;
      }
    }
    if (idx.size() < frame_rank) return nullptr;
    const Index prefix(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(frame_rank));
    const Index rest(idx.begin() + static_cast<std::ptrdiff_t>(frame_rank), idx.end());

    // Later generators win on overlap (they write last).
    for (std::size_t gi = w.generators.size(); gi-- > 0;) {
      const Generator& pg = w.generators[gi];
      auto cg = concrete_generator(pg);
      if (!cg) return nullptr;
      bool inside = cg->lb.size() == prefix.size();
      for (std::size_t d = 0; inside && d < prefix.size(); ++d) {
        inside = prefix[d] >= cg->lb[d] && prefix[d] < cg->ub[d] &&
                 (prefix[d] - cg->lb[d]) % cg->step[d] < cg->width[d];
      }
      if (!inside) continue;
      // Hoist a renamed copy of the generator body with the index
      // variables bound to the literal index.
      std::vector<StmtPtr> body = clone_block(pg.body);
      ExprPtr value = pg.value->clone();
      std::map<std::string, std::string> rename;
      for (const std::string& n : collect_defined_names(body, value.get())) {
        rename[n] = fresh_name(n);
      }
      for (const std::string& v : pg.vars) rename[v] = fresh_name(v);
      apply_rename(body, rename);
      apply_rename(*value, rename);

      auto bind = std::make_unique<Stmt>();
      bind->kind = StmtKind::Assign;
      if (pg.vector_var) {
        bind->target = rename[pg.vars[0]];
        bind->value = make_index_lit(prefix);
        pending_.push_back(std::move(bind));
      } else {
        for (std::size_t d = 0; d < pg.vars.size(); ++d) {
          auto b = std::make_unique<Stmt>();
          b->kind = StmtKind::Assign;
          b->target = rename[pg.vars[d]];
          b->value = make_int(prefix[d]);
          pending_.push_back(std::move(b));
        }
      }
      for (StmtPtr& s : body) pending_.push_back(std::move(s));
      if (!rest.empty()) return make_select(std::move(value), make_index_lit(rest));
      return value;
    }
    // Default element.
    if (w.op.kind == WithOpKind::Modarray) {
      return make_select(w.op.shape_or_target->clone(), make_index_lit(idx));
    }
    ExprPtr def = w.op.default_value ? w.op.default_value->clone() : make_int(0);
    if (!rest.empty()) return make_select(std::move(def), make_index_lit(rest));
    return def;
  }

  /// Resolves `v[idx]` by looking through v's definition in the current
  /// generator body (ArrayLit defs, with-loop defs, and
  /// `v = genarray...; v[c] = e;` element-assignment chains).
  ExprPtr select_through_var(const std::string& name, const Index& idx, Generator& g) {
    const Stmt* def = nullptr;
    std::vector<const Stmt*> elem_assigns;
    for (const StmtPtr& s : g.body) {
      if (s->target != name) continue;
      if (s->kind == StmtKind::Assign) def = s.get();
      if (s->kind == StmtKind::ElemAssign) elem_assigns.push_back(s.get());
    }
    if (def == nullptr || !def->value) return nullptr;

    // Element-assignment forwarding (last matching write wins). All
    // writes must have literal indices for the lookup to be sound.
    if (!elem_assigns.empty()) {
      for (const Stmt* ea : elem_assigns) {
        Index combined;
        for (const ExprPtr& i : ea->indices) {
          auto v = lit_index(*i);
          if (!v) return nullptr;
          combined.insert(combined.end(), v->begin(), v->end());
        }
      }
      for (auto it = elem_assigns.rbegin(); it != elem_assigns.rend(); ++it) {
        Index combined;
        for (const ExprPtr& i : (*it)->indices) {
          auto v = lit_index(*i);
          combined.insert(combined.end(), v->begin(), v->end());
        }
        if (combined == idx) return (*it)->value->clone();
        // A write covering a prefix of idx: select within it.
        if (combined.size() < idx.size() &&
            std::equal(combined.begin(), combined.end(), idx.begin())) {
          return make_select((*it)->value->clone(),
                             make_index_lit(Index(idx.begin() + static_cast<std::ptrdiff_t>(
                                                      combined.size()),
                                                  idx.end())));
        }
      }
      // No write matched: fall through to the base definition.
    }
    if (def->value->kind == ExprKind::With) {
      return inline_with_at(*def->value, idx, g);
    }
    if (def->value->kind == ExprKind::ArrayLit) {
      return apply_rules_select_arraylit(*def->value, idx);
    }
    return nullptr;
  }

  static ExprPtr apply_rules_select_arraylit(const Expr& lit, const Index& idx) {
    if (idx.empty()) return nullptr;
    const std::int64_t c = idx[0];
    if (c < 0 || c >= static_cast<std::int64_t>(lit.args.size())) return nullptr;
    ExprPtr elem = lit.args[static_cast<std::size_t>(c)]->clone();
    if (idx.size() == 1) return elem;
    return make_select(std::move(elem), make_index_lit(Index(idx.begin() + 1, idx.end())));
  }

  ExprPtr rules_binop(Expr& e) {
    Expr& a = *e.args[0];
    Expr& b = *e.args[1];
    // Constant folding.
    if (literal_value(a) && literal_value(b)) {
      Module empty;
      Interp interp(empty);
      return literal_expr(interp.eval_closed(e));
    }
    // Algebraic identities with scalar literals (safe elementwise).
    auto is_int_scalar = [](const Expr& x, std::int64_t v) {
      return x.kind == ExprKind::IntLit && x.int_val == v;
    };
    switch (e.bin_op) {
      case BinOpKind::Add:
        if (is_int_scalar(a, 0)) return std::move(e.args[1]);
        if (is_int_scalar(b, 0)) return std::move(e.args[0]);
        break;
      case BinOpKind::Sub:
        if (is_int_scalar(b, 0)) return std::move(e.args[0]);
        break;
      case BinOpKind::Mul:
        if (is_int_scalar(a, 1)) return std::move(e.args[1]);
        if (is_int_scalar(b, 1)) return std::move(e.args[0]);
        break;
      case BinOpKind::Div:
        if (is_int_scalar(b, 1)) return std::move(e.args[0]);
        break;
      default:
        break;
    }
    // Vector expansion: distribute arithmetic over array literals.
    const bool arith = e.bin_op == BinOpKind::Add || e.bin_op == BinOpKind::Sub ||
                       e.bin_op == BinOpKind::Mul || e.bin_op == BinOpKind::Div ||
                       e.bin_op == BinOpKind::Mod;
    if (arith) {
      const bool a_lit_arr = a.kind == ExprKind::ArrayLit;
      const bool b_lit_arr = b.kind == ExprKind::ArrayLit;
      const bool a_scalar = a.kind == ExprKind::IntLit || a.kind == ExprKind::FloatLit;
      const bool b_scalar = b.kind == ExprKind::IntLit || b.kind == ExprKind::FloatLit;
      if (a_lit_arr && b_lit_arr && a.args.size() == b.args.size()) {
        std::vector<ExprPtr> elems;
        elems.reserve(a.args.size());
        for (std::size_t i = 0; i < a.args.size(); ++i) {
          elems.push_back(make_bin(e.bin_op, std::move(a.args[i]), std::move(b.args[i])));
        }
        return make_array_lit(std::move(elems));
      }
      if (a_lit_arr && b_scalar) {
        std::vector<ExprPtr> elems;
        elems.reserve(a.args.size());
        for (ExprPtr& x : a.args) {
          elems.push_back(make_bin(e.bin_op, std::move(x), b.clone()));
        }
        return make_array_lit(std::move(elems));
      }
      if (a_scalar && b_lit_arr) {
        std::vector<ExprPtr> elems;
        elems.reserve(b.args.size());
        for (ExprPtr& x : b.args) {
          elems.push_back(make_bin(e.bin_op, a.clone(), std::move(x)));
        }
        return make_array_lit(std::move(elems));
      }
    }
    if (e.bin_op == BinOpKind::Concat) {
      ExprPtr av = as_index_array(std::move(e.args[0]));
      ExprPtr bv = as_index_array(std::move(e.args[1]));
      if (av->kind == ExprKind::ArrayLit && bv->kind == ExprKind::ArrayLit) {
        for (ExprPtr& x : bv->args) av->args.push_back(std::move(x));
        return av;
      }
      e.args[0] = std::move(av);
      e.args[1] = std::move(bv);
      return nullptr;
    }
    return nullptr;
  }

  ExprPtr rules_call(Expr& e) {
    // Constant folding of builtins.
    if (is_builtin(e.name)) {
      bool all_const = true;
      std::vector<Value> vals;
      for (const ExprPtr& a : e.args) {
        auto v = literal_value(*a);
        if (!v) {
          all_const = false;
          break;
        }
        vals.push_back(std::move(*v));
      }
      if (all_const) return literal_expr(eval_builtin(e.name, vals));
    }
    if (e.name == "CAT" && e.args.size() == 2) {
      ExprPtr av = as_index_array(std::move(e.args[0]));
      ExprPtr bv = as_index_array(std::move(e.args[1]));
      if (av->kind == ExprKind::ArrayLit && bv->kind == ExprKind::ArrayLit) {
        for (ExprPtr& x : bv->args) av->args.push_back(std::move(x));
        return av;
      }
      e.args[0] = std::move(av);
      e.args[1] = std::move(bv);
      return nullptr;
    }
    if (e.name == "MV" && e.args.size() == 2) {
      auto m = literal_value(*e.args[0]);
      if (!m || !m->is_int() || m->shape().rank() != 2) return nullptr;
      if (e.args[1]->kind != ExprKind::ArrayLit) return nullptr;
      const IntArray& mat = m->ints();
      const std::int64_t rows = mat.shape()[0];
      const std::int64_t cols = mat.shape()[1];
      if (cols != static_cast<std::int64_t>(e.args[1]->args.size())) return nullptr;
      std::vector<ExprPtr> out;
      out.reserve(static_cast<std::size_t>(rows));
      for (std::int64_t r = 0; r < rows; ++r) {
        ExprPtr acc;
        for (std::int64_t c = 0; c < cols; ++c) {
          const std::int64_t coeff = mat[r * cols + c];
          if (coeff == 0) continue;
          ExprPtr term = e.args[1]->args[static_cast<std::size_t>(c)]->clone();
          if (coeff != 1) term = make_bin(BinOpKind::Mul, make_int(coeff), std::move(term));
          acc = acc ? make_bin(BinOpKind::Add, std::move(acc), std::move(term)) : std::move(term);
        }
        out.push_back(acc ? std::move(acc) : make_int(0));
      }
      return make_array_lit(std::move(out));
    }
    return nullptr;
  }

  ExprPtr rules_var(Expr& e, Generator& g) {
    if (!ssa_names_.count(e.name)) return nullptr;
    const Stmt* def = nullptr;
    bool elem_assigned = false;
    for (const StmtPtr& s : g.body) {
      if (s->target != e.name) continue;
      if (s->kind == StmtKind::Assign) def = s.get();
      if (s->kind == StmtKind::ElemAssign) elem_assigned = true;
    }
    if (def == nullptr || !def->value || elem_assigned) return nullptr;
    const Expr& rhs = *def->value;
    if (rhs.kind == ExprKind::IntLit || rhs.kind == ExprKind::FloatLit ||
        rhs.kind == ExprKind::Var) {
      return rhs.clone();
    }
    if (rhs.kind == ExprKind::ArrayLit && rhs.args.size() <= 8) {
      bool simple = true;
      for (const ExprPtr& a : rhs.args) {
        if (node_count(*a) > 24) simple = false;
      }
      if (simple) return rhs.clone();
    }
    // Single-use inlining of pure, with-free definitions.
    auto u = uses_.find(e.name);
    if (u != uses_.end() && u->second == 1 && !contains_with(rhs) && node_count(rhs) <= 64) {
      return rhs.clone();
    }
    return nullptr;
  }

  static int node_count(const Expr& e) {
    int n = 0;
    visit_exprs(const_cast<Expr&>(e), [&](Expr&) { ++n; });
    return n;
  }
  static bool contains_with(const Expr& e) {
    bool found = false;
    visit_exprs(const_cast<Expr&>(e), [&](Expr& x) {
      if (x.kind == ExprKind::With) found = true;
    });
    return found;
  }

  // ---- with-loop folding ------------------------------------------------------

  struct Producer {
    const Expr* with = nullptr;
    std::size_t stmt_index = 0;
    std::size_t frame_rank = 0;
  };

  std::map<std::string, Producer> find_producers(const std::vector<StmtPtr>& body) {
    std::map<std::string, Producer> out;
    std::map<std::string, int> assign_counts;
    std::set<std::string> elem_assigned;
    std::function<void(const std::vector<StmtPtr>&)> scan = [&](const std::vector<StmtPtr>& b) {
      for (const StmtPtr& s : b) {
        if (s->kind == StmtKind::Assign || s->kind == StmtKind::For) ++assign_counts[s->target];
        if (s->kind == StmtKind::ElemAssign) elem_assigned.insert(s->target);
        scan(s->body);
        scan(s->else_body);
      }
    };
    scan(body);
    for (std::size_t i = 0; i < body.size(); ++i) {
      const Stmt& s = *body[i];
      if (s.kind != StmtKind::Assign || !s.value || s.value->kind != ExprKind::With) continue;
      if (assign_counts[s.target] != 1 || elem_assigned.count(s.target)) continue;
      const Expr& w = *s.value;
      if (w.op.kind != WithOpKind::Genarray) continue;
      auto shp = literal_value(*w.op.shape_or_target);
      if (!shp || !shp->is_int()) continue;
      bool ok = true;
      for (const Generator& g : w.generators) {
        if (!lattice_of(g)) ok = false;
        for (const StmtPtr& bs : g.body) {
          if (bs->kind == StmtKind::For || bs->kind == StmtKind::If) ok = false;
        }
        if (!body_is_ssa(g.body)) ok = false;
      }
      if (!ok) continue;
      Producer p;
      p.with = &w;
      p.stmt_index = i;
      p.frame_rank = shp->as_index_vector().size();
      out.emplace(s.target, p);
    }
    return out;
  }

  /// Performs at most one fold; true when the body changed.
  bool fold_step(std::vector<StmtPtr>& body) {
    const auto producers = find_producers(body);
    if (producers.empty()) return false;
    for (std::size_t i = 0; i < body.size(); ++i) {
      Stmt& s = *body[i];
      if (s.kind != StmtKind::Assign || !s.value || s.value->kind != ExprKind::With) continue;
      Expr& w = *s.value;
      for (std::size_t gi = 0; gi < w.generators.size(); ++gi) {
        if (try_fold_generator(w, gi, producers, i)) return true;
      }
    }
    return false;
  }

  struct Candidate {
    std::string producer;
    std::vector<Lin> index;
  };

  std::optional<Candidate> find_candidate(const Generator& g, const Lattice& lat,
                                          const AffineEval& ae,
                                          const std::map<std::string, Producer>& producers,
                                          std::size_t consumer_index) {
    std::optional<Candidate> found;
    auto scan_expr = [&](const Expr& root) {
      visit_exprs(const_cast<Expr&>(root), [&](Expr& x) {
        if (found) return;
        if (x.kind != ExprKind::Select) return;
        if (x.args[0]->kind != ExprKind::Var) return;
        auto it = producers.find(x.args[0]->name);
        if (it == producers.end() || it->second.stmt_index >= consumer_index) return;
        auto f = ae.eval_vector(*x.args[1]);
        if (!f) return;
        if (f->size() < it->second.frame_rank) return;
        found = Candidate{x.args[0]->name, std::move(*f)};
      });
    };
    for (const StmtPtr& bs : g.body) {
      if (bs->value) scan_expr(*bs->value);
      if (found) return found;
    }
    scan_expr(*g.value);
    return found;
  }

  /// Membership constraints of one producer generator, as a box over
  /// the consumer lattice; nullopt when unsupported (non-univariate
  /// index components etc.), in which case folding is abandoned.
  /// The inner optional is empty when the producer generator can never
  /// match.
  std::optional<std::optional<Box>> membership_box(const std::vector<Lin>& f,
                                                   const ConcreteGen& pg, const Lattice& lat) {
    Box box;
    box.reserve(lat.rank());
    for (std::size_t d = 0; d < lat.rank(); ++d) {
      box.push_back(DimRegion::full(lat.dims[d].extent));
    }
    for (std::size_t d = 0; d < pg.lb.size(); ++d) {
      const Lin& lin = f[d];
      const std::int64_t plb = pg.lb[d];
      const std::int64_t pub = pg.ub[d];
      const std::int64_t pstep = pg.step[d];
      const std::int64_t pwidth = pg.width[d];
      if (pwidth != 1 && pwidth != pstep) return std::nullopt;
      int var = -1;
      for (std::size_t k = 0; k < lin.coeff.size(); ++k) {
        if (lin.coeff[k] != 0) {
          if (var >= 0) return std::nullopt;  // multivariate component
          var = static_cast<int>(k);
        }
      }
      if (var < 0) {
        const std::int64_t c = lin.c0;
        const bool inside =
            c >= plb && c < pub && (pwidth == pstep || (c - plb) % pstep < pwidth);
        if (!inside) return std::optional<std::optional<Box>>{std::optional<Box>{}};
        continue;
      }
      const std::int64_t beta = lin.coeff[static_cast<std::size_t>(var)];
      if (beta <= 0) return std::nullopt;
      DimRegion c;
      c.lo = ceil_div(plb - lin.c0, beta);
      c.hi = ceil_div(pub - lin.c0, beta);
      c.r = 0;
      c.m = 1;
      if (pstep > 1 && pwidth == 1) {
        // beta*t + c0 == plb (mod pstep)
        const std::int64_t gcd = std::gcd(beta, pstep);
        if (((plb - lin.c0) % gcd + gcd) % gcd != 0) {
          return std::optional<std::optional<Box>>{std::optional<Box>{}};
        }
        const std::int64_t m = pstep / gcd;
        std::int64_t r = -1;
        for (std::int64_t t = 0; t < m; ++t) {
          if (((beta * t + lin.c0 - plb) % pstep + pstep) % pstep == 0) {
            r = t;
            break;
          }
        }
        if (r < 0) return std::optional<std::optional<Box>>{std::optional<Box>{}};
        c.r = r;
        c.m = m;
      }
      auto inter = box[static_cast<std::size_t>(var)].intersect(c);
      if (!inter) return std::optional<std::optional<Box>>{std::optional<Box>{}};
      box[static_cast<std::size_t>(var)] = *inter;
    }
    return std::optional<std::optional<Box>>{std::move(box)};
  }

  static std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    // b > 0
    return a >= 0 ? (a + b - 1) / b : -((-a) / b);
  }

  Generator remake(const Generator& g, const Lattice& lat, const Box& box) {
    Generator ng = clone_generator(g);
    Index lb(lat.rank()), ub(lat.rank()), step(lat.rank());
    for (std::size_t d = 0; d < lat.rank(); ++d) {
      const auto& dim = lat.dims[d];
      lb[d] = dim.lb + dim.step * box[d].first();
      step[d] = dim.step * box[d].m;
      ub[d] = dim.lb + dim.step * box[d].last() + 1;
    }
    ng.lower = make_index_lit(lb);
    ng.lower_inclusive = true;
    ng.upper = make_index_lit(ub);
    ng.upper_inclusive = false;
    bool unit = true;
    for (std::int64_t s : step) {
      if (s != 1) unit = false;
    }
    ng.step = unit ? nullptr : make_index_lit(step);
    ng.width = nullptr;
    return ng;
  }

  bool try_fold_generator(Expr& w, std::size_t gi, const std::map<std::string, Producer>& producers,
                          std::size_t consumer_index) {
    Generator& g = w.generators[gi];
    auto lat = lattice_of(g);
    if (!lat) return false;
    AffineEval ae(*lat);
    ae.bind_block(g.body);
    auto cand = find_candidate(g, *lat, ae, producers, consumer_index);
    if (!cand) return false;
    const Producer& prod = producers.at(cand->producer);
    const Expr& pw = *prod.with;
    const std::size_t R = prod.frame_rank;

    // Region decomposition: later producer generators win on overlap.
    struct Piece {
      Box box;
      int pg = -1;  // -1 == default
    };
    std::vector<Piece> pieces;
    Box full;
    for (std::size_t d = 0; d < lat->rank(); ++d) {
      full.push_back(DimRegion::full(lat->dims[d].extent));
    }
    std::vector<Box> remaining{full};
    const std::vector<Lin> frame_index(cand->index.begin(),
                                       cand->index.begin() + static_cast<std::ptrdiff_t>(R));
    for (std::size_t pi = pw.generators.size(); pi-- > 0;) {
      auto cg = concrete_generator(pw.generators[pi]);
      if (!cg) return false;
      auto mbox = membership_box(frame_index, *cg, *lat);
      if (!mbox) return false;  // unsupported shape: abandon the fold
      if (!*mbox) continue;     // never matches
      std::vector<Box> next;
      for (Box& b : remaining) {
        if (auto inter = affine::box_intersect(b, **mbox)) {
          pieces.push_back(Piece{std::move(*inter), static_cast<int>(pi)});
        }
        for (Box& rest : affine::box_subtract(b, **mbox)) next.push_back(std::move(rest));
      }
      remaining = std::move(next);
    }
    for (Box& b : remaining) pieces.push_back(Piece{std::move(b), -1});

    if (pieces.empty()) return false;

    // Build the substituted sub-generators.
    std::vector<Generator> new_gens;
    for (Piece& piece : pieces) {
      Generator ng = remake(g, *lat, piece.box);
      substitute_selects(ng, *lat, cand->producer, cand->index, pw, piece.pg, R);
      simplify_generator(ng);
      new_gens.push_back(std::move(ng));
    }
    ++stats.folds;
    stats.generator_splits += static_cast<int>(new_gens.size()) - 1;
    w.generators.erase(w.generators.begin() + static_cast<std::ptrdiff_t>(gi));
    for (std::size_t k = 0; k < new_gens.size(); ++k) {
      w.generators.insert(w.generators.begin() + static_cast<std::ptrdiff_t>(gi + k),
                          std::move(new_gens[k]));
    }
    return true;
  }

  /// Replaces every select of `pname` whose affine index equals `f`
  /// inside the sub-generator with the producer's cell expression
  /// (generator `pg_index` of `pw`, or the default when -1).
  void substitute_selects(Generator& ng, const Lattice& lat, const std::string& pname,
                          const std::vector<Lin>& f, const Expr& pw, int pg_index,
                          std::size_t frame_rank) {
    AffineEval ae(lat);
    ae.bind_block(ng.body);
    subst_hoist_.clear();
    auto subst_in = [&](ExprPtr& slot) {
      if (!slot) return;
      std::function<void(ExprPtr&)> walk = [&](ExprPtr& node) {
        for (ExprPtr& a : node->args) {
          if (a) walk(a);
        }
        if (node->kind == ExprKind::Select && node->args[0]->kind == ExprKind::Var &&
            node->args[0]->name == pname) {
          auto fi = ae.eval_vector(*node->args[1]);
          if (fi && *fi == f) {
            node = build_substitution(ng, lat, f, pw, pg_index, frame_rank);
          }
        }
      };
      walk(slot);
    };
    for (StmtPtr& s : ng.body) {
      subst_in(s->value);
      for (ExprPtr& i : s->indices) subst_in(i);
    }
    subst_in(ng.value);
    // Prepend the hoisted producer bodies (they only reference the
    // consumer's index variables and outer-scope names).
    if (!subst_hoist_.empty()) {
      std::vector<StmtPtr> new_body;
      for (StmtPtr& b : subst_hoist_) new_body.push_back(std::move(b));
      for (StmtPtr& b : ng.body) new_body.push_back(std::move(b));
      ng.body = std::move(new_body);
      subst_hoist_.clear();
    }
  }

  ExprPtr build_substitution(Generator& ng, const Lattice& lat, const std::vector<Lin>& f,
                             const Expr& pw, int pg_index, std::size_t frame_rank) {
    std::vector<ExprPtr> rest_exprs;
    for (std::size_t d = frame_rank; d < f.size(); ++d) {
      rest_exprs.push_back(affine::lin_to_expr(f[d], lat));
    }
    if (pg_index < 0) {
      ExprPtr def = pw.op.default_value ? pw.op.default_value->clone() : make_int(0);
      if (!rest_exprs.empty()) {
        return make_select(std::move(def), make_array_lit(std::move(rest_exprs)));
      }
      return def;
    }
    const Generator& pg = pw.generators[static_cast<std::size_t>(pg_index)];
    std::vector<StmtPtr> body = clone_block(pg.body);
    ExprPtr value = pg.value->clone();
    std::map<std::string, std::string> rename;
    for (const std::string& n : collect_defined_names(body, value.get())) {
      rename[n] = fresh_name(n);
    }
    for (const std::string& v : pg.vars) rename[v] = fresh_name(v);
    apply_rename(body, rename);
    apply_rename(*value, rename);

    std::vector<StmtPtr> binds;
    if (pg.vector_var) {
      std::vector<ExprPtr> comps;
      for (std::size_t d = 0; d < frame_rank; ++d) {
        comps.push_back(affine::lin_to_expr(f[d], lat));
      }
      auto b = std::make_unique<Stmt>();
      b->kind = StmtKind::Assign;
      b->target = rename[pg.vars[0]];
      b->value = make_array_lit(std::move(comps));
      binds.push_back(std::move(b));
    } else {
      for (std::size_t d = 0; d < pg.vars.size(); ++d) {
        auto b = std::make_unique<Stmt>();
        b->kind = StmtKind::Assign;
        b->target = rename[pg.vars[d]];
        b->value = affine::lin_to_expr(f[d], lat);
        binds.push_back(std::move(b));
      }
    }
    // Queue the bindings and the producer body for prepending once the
    // substitution walk over the sub-generator finishes.
    for (StmtPtr& b : binds) subst_hoist_.push_back(std::move(b));
    for (StmtPtr& b : body) subst_hoist_.push_back(std::move(b));
    (void)ng;

    if (!rest_exprs.empty()) {
      return make_select(std::move(value), make_array_lit(std::move(rest_exprs)));
    }
    return value;
  }

  // ---- %-elimination ----------------------------------------------------------

  bool mod_split_step(std::vector<StmtPtr>& body) {
    for (StmtPtr& s : body) {
      if (s->kind != StmtKind::Assign || !s->value || s->value->kind != ExprKind::With) continue;
      Expr& w = *s->value;
      for (std::size_t gi = 0; gi < w.generators.size(); ++gi) {
        if (mod_split_generator(w, gi)) return true;
      }
    }
    return false;
  }

  bool mod_split_generator(Expr& w, std::size_t gi) {
    Generator& g = w.generators[gi];
    auto lat = lattice_of(g);
    if (!lat) return false;
    AffineEval ae(*lat);
    ae.bind_block(g.body);

    // First try: drop mods that are provably in range.
    bool dropped = false;
    auto drop_in = [&](ExprPtr& slot) {
      if (!slot) return;
      std::function<void(ExprPtr&)> walk = [&](ExprPtr& node) {
        for (ExprPtr& a : node->args) {
          if (a) walk(a);
        }
        if (node->kind != ExprKind::BinOp || node->bin_op != BinOpKind::Mod) return;
        if (node->args[1]->kind != ExprKind::IntLit || node->args[1]->int_val <= 0) return;
        auto lin = ae.eval_scalar(*node->args[0]);
        if (!lin) return;
        auto [lo, hi] = ae.range(*lin);
        if (lo >= 0 && hi < node->args[1]->int_val) {
          node = std::move(node->args[0]);
          ++stats.mods_removed;
          dropped = true;
        }
      };
      walk(slot);
    };
    for (StmtPtr& s : g.body) {
      drop_in(s->value);
      for (ExprPtr& i : s->indices) drop_in(i);
    }
    drop_in(g.value);
    if (dropped) return true;

    // Second: find a mod that becomes droppable after splitting one
    // lattice dimension.
    std::optional<std::pair<std::size_t, std::int64_t>> split;  // (dim, t-threshold)
    auto find_split = [&](ExprPtr& slot) {
      if (!slot || split) return;
      std::function<void(const Expr&)> walk = [&](const Expr& node) {
        if (split) return;
        for (const ExprPtr& a : node.args) {
          if (a) walk(*a);
        }
        if (split) return;
        if (node.kind != ExprKind::BinOp || node.bin_op != BinOpKind::Mod) return;
        if (node.args[1]->kind != ExprKind::IntLit || node.args[1]->int_val <= 0) return;
        const std::int64_t K = node.args[1]->int_val;
        auto lin = ae.eval_scalar(*node.args[0]);
        if (!lin || lin->c0 < 0) return;
        int var = -1;
        for (std::size_t k = 0; k < lin->coeff.size(); ++k) {
          if (lin->coeff[k] != 0) {
            if (var >= 0) return;
            var = static_cast<int>(k);
          }
        }
        if (var < 0) return;
        const std::int64_t beta = lin->coeff[static_cast<std::size_t>(var)];
        if (beta <= 0) return;
        // In range while beta*t + c0 < K  =>  t < ceil((K - c0)/beta).
        const std::int64_t thr = ceil_div(K - lin->c0, beta);
        const std::int64_t extent = lat->dims[static_cast<std::size_t>(var)].extent;
        if (thr > 0 && thr < extent) {
          split = {static_cast<std::size_t>(var), thr};
        }
      };
      walk(*slot);
    };
    for (StmtPtr& s : g.body) {
      find_split(s->value);
      for (ExprPtr& i : s->indices) find_split(i);
    }
    find_split(g.value);
    if (!split) return false;

    const auto [dim, thr] = *split;
    Box inner, outer;
    for (std::size_t d = 0; d < lat->rank(); ++d) {
      inner.push_back(DimRegion::full(lat->dims[d].extent));
      outer.push_back(DimRegion::full(lat->dims[d].extent));
    }
    inner[dim].hi = thr;
    outer[dim].lo = thr;
    Generator g_in = remake(g, *lat, inner);
    Generator g_out = remake(g, *lat, outer);
    simplify_generator(g_in);
    simplify_generator(g_out);
    ++stats.generator_splits;
    w.generators.erase(w.generators.begin() + static_cast<std::ptrdiff_t>(gi));
    w.generators.insert(w.generators.begin() + static_cast<std::ptrdiff_t>(gi), std::move(g_out));
    w.generators.insert(w.generators.begin() + static_cast<std::ptrdiff_t>(gi), std::move(g_in));
    return true;
  }

  // ---- dead code elimination ----------------------------------------------------

  void dce(std::vector<StmtPtr>& body) {
    std::set<std::string> live;
    std::vector<StmtPtr> kept;
    for (auto it = body.rbegin(); it != body.rend(); ++it) {
      Stmt& s = **it;
      bool keep = true;
      switch (s.kind) {
        case StmtKind::Return:
          count_uses_into(*s.value, live);
          break;
        case StmtKind::Assign:
          keep = live.count(s.target) > 0;
          if (keep) {
            live.erase(s.target);
            if (s.value) count_uses_into(*s.value, live);
          }
          break;
        case StmtKind::ElemAssign:
          keep = live.count(s.target) > 0;
          if (keep) {
            for (const ExprPtr& i : s.indices) count_uses_into(*i, live);
            count_uses_into(*s.value, live);
            live.insert(s.target);
          }
          break;
        case StmtKind::For:
        case StmtKind::If: {
          // Keep when any variable written inside is live afterwards.
          std::set<std::string> written;
          std::function<void(const std::vector<StmtPtr>&)> scan =
              [&](const std::vector<StmtPtr>& b) {
                for (const StmtPtr& c : b) {
                  if (!c->target.empty()) written.insert(c->target);
                  scan(c->body);
                  scan(c->else_body);
                }
              };
          scan(s.body);
          scan(s.else_body);
          keep = false;
          for (const std::string& wname : written) {
            if (live.count(wname)) keep = true;
          }
          if (keep) {
            visit_exprs(s, [&](Expr& x) {
              if (x.kind == ExprKind::Var) live.insert(x.name);
            });
          }
          break;
        }
      }
      if (keep) {
        kept.push_back(std::move(*it));
      } else {
        ++stats.stmts_removed;
      }
    }
    std::reverse(kept.begin(), kept.end());
    body = std::move(kept);
  }

  // ---- modarray conversion --------------------------------------------------------

  std::optional<Shape> infer_expr_shape(const Expr& e,
                                        const std::map<std::string, Shape>& shapes) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::BoolLit:
        return Shape{};
      case ExprKind::Var: {
        auto it = shapes.find(e.name);
        if (it == shapes.end()) return std::nullopt;
        return it->second;
      }
      case ExprKind::ArrayLit: {
        if (e.args.empty()) return Shape{0};
        auto cell = infer_expr_shape(*e.args[0], shapes);
        if (!cell) return std::nullopt;
        return Shape{static_cast<std::int64_t>(e.args.size())}.concat(*cell);
      }
      case ExprKind::BinOp: {
        if (e.bin_op == BinOpKind::Concat) {
          auto a = infer_expr_shape(*e.args[0], shapes);
          auto b = infer_expr_shape(*e.args[1], shapes);
          if (!a || !b) return std::nullopt;
          auto len = [](const Shape& s) { return s.rank() == 0 ? 1 : s.elements(); };
          return Shape{len(*a) + len(*b)};
        }
        auto a = infer_expr_shape(*e.args[0], shapes);
        auto b = infer_expr_shape(*e.args[1], shapes);
        if (a && a->rank() == 0) return b;
        if (b && b->rank() == 0) return a;
        if (a) return a;
        return b;
      }
      case ExprKind::UnOp:
        return infer_expr_shape(*e.args[0], shapes);
      case ExprKind::Call: {
        if (e.name == "shape") {
          auto a = infer_expr_shape(*e.args[0], shapes);
          if (!a) return std::nullopt;
          return Shape{static_cast<std::int64_t>(a->rank())};
        }
        if (e.name == "dim" || e.name == "toi" || e.name == "tod" || e.name == "sum") {
          return Shape{};
        }
        if (e.name == "min" || e.name == "max" || e.name == "abs") {
          // Scalar broadcast semantics, like the binary operators.
          std::optional<Shape> out = Shape{};
          for (const ExprPtr& a : e.args) {
            auto sh = infer_expr_shape(*a, shapes);
            if (!sh) return std::nullopt;
            if (sh->rank() > 0) out = sh;
          }
          return out;
        }
        if (e.name == "MV") {
          auto m = infer_expr_shape(*e.args[0], shapes);
          if (!m || m->rank() != 2) return std::nullopt;
          return Shape{(*m)[0]};
        }
        if (e.name == "CAT") {
          auto a = infer_expr_shape(*e.args[0], shapes);
          auto b = infer_expr_shape(*e.args[1], shapes);
          if (!a || !b) return std::nullopt;
          auto len = [](const Shape& s) { return s.rank() == 0 ? 1 : s.elements(); };
          return Shape{len(*a) + len(*b)};
        }
        return std::nullopt;
      }
      case ExprKind::Select: {
        auto a = infer_expr_shape(*e.args[0], shapes);
        if (!a) return std::nullopt;
        std::optional<std::size_t> len;
        if (auto v = lit_index(*e.args[1])) {
          len = v->size();
        } else if (e.args[1]->kind == ExprKind::ArrayLit) {
          len = e.args[1]->args.size();
        } else if (auto is = infer_expr_shape(*e.args[1], shapes)) {
          len = is->rank() == 0 ? 1 : static_cast<std::size_t>(is->elements());
        }
        if (!len || *len > a->rank()) return std::nullopt;
        return a->drop(*len);
      }
      case ExprKind::With: {
        if (e.op.kind == WithOpKind::Fold) {
          return infer_expr_shape(*e.op.shape_or_target, shapes);
        }
        std::optional<Shape> frame;
        if (e.op.kind == WithOpKind::Genarray) {
          auto shp = literal_value(*e.op.shape_or_target);
          if (!shp || !shp->is_int()) return std::nullopt;
          frame = Shape(shp->as_index_vector());
        } else {
          auto t = infer_expr_shape(*e.op.shape_or_target, shapes);
          if (!t) return std::nullopt;
          return t;  // modarray preserves the target shape
        }
        std::optional<Shape> cell;
        if (e.op.default_value) cell = infer_expr_shape(*e.op.default_value, shapes);
        if (!cell && !e.generators.empty()) {
          const Generator& g = e.generators[0];
          std::map<std::string, Shape> inner = shapes;
          if (g.vector_var) {
            inner[g.vars[0]] = Shape{static_cast<std::int64_t>(frame->rank())};
          } else {
            for (const std::string& v : g.vars) inner[v] = Shape{};
          }
          for (const StmtPtr& s : g.body) {
            if (s->kind == StmtKind::Assign && s->value) {
              if (auto sh = infer_expr_shape(*s->value, inner)) {
                inner[s->target] = *sh;
              }
            }
          }
          cell = infer_expr_shape(*g.value, inner);
        }
        if (!cell) return std::nullopt;
        return frame->concat(*cell);
      }
    }
    return std::nullopt;
  }

  /// Expands a concrete generator into iv-space boxes (one per width
  /// offset combination; capped).
  static std::optional<std::vector<Box>> iv_boxes(const ConcreteGen& cg) {
    std::vector<Box> out{{}};
    for (std::size_t d = 0; d < cg.lb.size(); ++d) {
      std::vector<DimRegion> options;
      if (cg.step[d] == 1) {
        options.push_back(DimRegion{cg.lb[d], cg.ub[d], 0, 1});
      } else {
        for (std::int64_t wo = 0; wo < cg.width[d]; ++wo) {
          DimRegion r;
          r.lo = cg.lb[d] + wo;
          r.hi = cg.ub[d];
          r.m = cg.step[d];
          r.r = ((cg.lb[d] + wo) % cg.step[d] + cg.step[d]) % cg.step[d];
          options.push_back(r);
        }
      }
      std::vector<Box> next;
      for (const Box& b : out) {
        for (const DimRegion& o : options) {
          Box nb = b;
          nb.push_back(o);
          next.push_back(std::move(nb));
        }
      }
      if (next.size() > 64) return std::nullopt;
      out = std::move(next);
    }
    return out;
  }

  void convert_modarrays(std::vector<StmtPtr>& body,
                         const std::map<std::string, Shape>& param_shapes) {
    std::map<std::string, Shape> shapes = param_shapes;
    for (StmtPtr& s : body) {
      if (s->kind != StmtKind::Assign || !s->value) continue;
      Expr& e = *s->value;
      if (e.kind == ExprKind::With && e.op.kind == WithOpKind::Modarray) {
        auto target_shape = infer_expr_shape(*e.op.shape_or_target, shapes);
        if (target_shape) {
          std::size_t gen_rank = target_shape->rank();
          if (!e.generators.empty() && !e.generators[0].vector_var) {
            gen_rank = e.generators[0].vars.size();
          }
          const Shape frame = target_shape->take(gen_rank);
          // Collect iv-space boxes of all generators; require pairwise
          // disjointness and full coverage.
          bool ok = true;
          std::vector<Box> all;
          for (const Generator& g : e.generators) {
            auto cg = concrete_generator(g);
            if (!cg) {
              ok = false;
              break;
            }
            auto boxes = iv_boxes(*cg);
            if (!boxes) {
              ok = false;
              break;
            }
            for (Box& b : *boxes) all.push_back(std::move(b));
          }
          if (ok) {
            std::int64_t covered = 0;
            for (std::size_t i = 0; i < all.size() && ok; ++i) {
              // Clamp to the frame box.
              for (std::size_t d = 0; d < frame.rank(); ++d) {
                all[i][d].lo = std::max<std::int64_t>(all[i][d].lo, 0);
                all[i][d].hi = std::min(all[i][d].hi, frame[d]);
              }
              covered += affine::box_count(all[i]);
              for (std::size_t j = i + 1; j < all.size() && ok; ++j) {
                if (affine::box_intersect(all[i], all[j])) ok = false;
              }
            }
            if (ok && covered == frame.elements() && target_shape->rank() == frame.rank()) {
              e.op.kind = WithOpKind::Genarray;
              e.op.shape_or_target = make_index_lit(frame.dims());
              e.op.default_value = nullptr;
              ++stats.modarrays_converted;
            }
          }
        }
      }
      if (auto sh = infer_expr_shape(e, shapes)) shapes[s->target] = *sh;
    }
  }

  // ---- top-level cleanup -------------------------------------------------------

  /// Renames multiply-assigned top-level variables into single-assign
  /// versions and propagates `x = y` aliases, so that with-loop
  /// producers hidden behind the specialiser's alias chains become
  /// visible to the folder.
  void toplevel_cleanup(std::vector<StmtPtr>& body) {
    // Names that must not be touched: anything written inside loops,
    // conditionals or via element assignment, and anything that is a
    // generator variable or generator-body binding somewhere.
    std::map<std::string, int> assign_counts;
    std::set<std::string> excluded;
    for (StmtPtr& s : body) {
      if (s->kind == StmtKind::Assign) {
        ++assign_counts[s->target];
      } else if (s->kind == StmtKind::ElemAssign) {
        excluded.insert(s->target);
      } else if (s->kind == StmtKind::For || s->kind == StmtKind::If) {
        excluded.insert(s->target);
        std::function<void(const std::vector<StmtPtr>&)> scan =
            [&](const std::vector<StmtPtr>& b) {
              for (const StmtPtr& c : b) {
                if (!c->target.empty()) excluded.insert(c->target);
                scan(c->body);
                scan(c->else_body);
              }
            };
        scan(s->body);
        scan(s->else_body);
      }
      visit_exprs(*s, [&](Expr& x) {
        for (const Generator& g : x.generators) {
          for (const std::string& v : g.vars) excluded.insert(v);
          for (const StmtPtr& bs : g.body) {
            if (!bs->target.empty()) excluded.insert(bs->target);
          }
        }
      });
    }

    // Pass 1: SSA-version multiply-assigned names.
    std::map<std::string, std::string> current;
    auto rewrite_uses = [&](Stmt& s) {
      visit_exprs(s, [&](Expr& x) {
        if (x.kind != ExprKind::Var) return;
        auto it = current.find(x.name);
        if (it != current.end()) x.name = it->second;
      });
    };
    for (StmtPtr& s : body) {
      rewrite_uses(*s);
      if (s->kind == StmtKind::Assign && assign_counts[s->target] > 1 &&
          !excluded.count(s->target)) {
        const std::string nv = fresh_name(s->target);
        current[s->target] = nv;
        s->target = nv;
      }
    }

    // Pass 2: propagate single-assignment aliases `x = y` where neither
    // side is ever mutated (value semantics keep them equal forever).
    std::map<std::string, std::string> alias;
    for (StmtPtr& s : body) {
      visit_exprs(*s, [&](Expr& x) {
        if (x.kind != ExprKind::Var) return;
        auto it = alias.find(x.name);
        if (it != alias.end()) x.name = it->second;
      });
      if (s->kind == StmtKind::Assign && s->value && s->value->kind == ExprKind::Var &&
          !excluded.count(s->target) && !excluded.count(s->value->name)) {
        alias[s->target] = s->value->name;
      }
    }
  }

  // ---- drivers -------------------------------------------------------------------

  void simplify_all(std::vector<StmtPtr>& body) {
    for (StmtPtr& s : body) {
      visit_exprs(*s, [&](Expr& x) {
        if (x.kind != ExprKind::With) return;
        for (Generator& g : x.generators) simplify_generator(g);
      });
    }
    simplify_loop_bodies(body);
  }

  /// Applies the expression simplifier to for-loop bodies (innermost
  /// first). This is the loop-body strength reduction a conventional C
  /// compiler performs on the paper's generic output tiler: the
  /// MV(CAT(paving, fitting), [i,j,k]) of Figure 6 collapses to plain
  /// index arithmetic. The body is wrapped in a pseudo-generator whose
  /// value references every assigned name, so dead-code elimination
  /// cannot drop observable writes.
  void simplify_loop_bodies(std::vector<StmtPtr>& body) {
    for (StmtPtr& s : body) {
      if (s->kind != StmtKind::For && s->kind != StmtKind::If) continue;
      simplify_loop_bodies(s->body);
      simplify_loop_bodies(s->else_body);
      for (std::vector<StmtPtr>* blk : {&s->body, &s->else_body}) {
        if (blk->empty()) continue;
        Generator dummy;
        dummy.vector_var = false;
        dummy.body = std::move(*blk);
        std::set<std::string> assigned;
        std::function<void(const std::vector<StmtPtr>&)> names =
            [&](const std::vector<StmtPtr>& b) {
              for (const StmtPtr& c : b) {
                if (!c->target.empty()) assigned.insert(c->target);
                names(c->body);
                names(c->else_body);
              }
            };
        names(dummy.body);
        std::vector<ExprPtr> keep;
        for (const std::string& n : assigned) keep.push_back(make_var(n));
        dummy.value = make_array_lit(std::move(keep));
        simplify_generator(dummy);
        *blk = std::move(dummy.body);
      }
    }
  }

 private:
  int counter_ = 0;
  bool changed_ = false;
  std::set<std::string> ssa_names_;
  std::set<std::string> elem_chain_ok_;
  std::map<std::string, int> uses_;
  std::vector<StmtPtr> pending_;
  std::vector<StmtPtr> subst_hoist_;
};

}  // namespace

bool flatten_cell(Generator& g, const Shape& cell) {
  if (cell.rank() == 0) return true;
  Optimizer opt;
  std::vector<ExprPtr> elems;
  elems.reserve(static_cast<std::size_t>(cell.elements()));
  for_each_index(cell, [&](const Index& c) {
    elems.push_back(make_select(g.value->clone(), make_index_lit(c)));
  });
  g.value = make_array_lit(std::move(elems));
  opt.simplify_generator(g);
  if (g.value->kind != ExprKind::ArrayLit ||
      g.value->args.size() != static_cast<std::size_t>(cell.elements())) {
    return false;
  }
  return true;
}

std::map<std::string, Shape> infer_shapes(const std::vector<StmtPtr>& body,
                                          const std::map<std::string, Shape>& param_shapes) {
  Optimizer opt;
  std::map<std::string, Shape> shapes = param_shapes;
  std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& b) {
    for (const StmtPtr& s : b) {
      if (s->kind == StmtKind::Assign && s->value) {
        if (auto sh = opt.infer_expr_shape(*s->value, shapes)) shapes[s->target] = *sh;
      } else if (s->kind == StmtKind::Assign && s->decl_type &&
                 s->decl_type->kind == TypeSpec::Dims::Described) {
        Index dims;
        bool ok = true;
        for (std::int64_t d : s->decl_type->dims) {
          if (d < 0) ok = false;
          dims.push_back(d);
        }
        if (ok) shapes[s->target] = Shape(dims);
      }
      walk(s->body);
      walk(s->else_body);
    }
  };
  walk(body);
  return shapes;
}

OptStats run_wlf(std::vector<StmtPtr>& body) {
  Optimizer opt;
  opt.toplevel_cleanup(body);
  opt.simplify_all(body);
  for (int guard = 0; guard < 4096; ++guard) {
    if (!opt.fold_step(body)) break;
  }
  return opt.stats;
}

OptStats run_mod_split(std::vector<StmtPtr>& body) {
  Optimizer opt;
  for (int guard = 0; guard < 4096; ++guard) {
    if (!opt.mod_split_step(body)) break;
  }
  return opt.stats;
}

OptStats convert_modarray(std::vector<StmtPtr>& body,
                          const std::map<std::string, Shape>& shapes) {
  Optimizer opt;
  opt.convert_modarrays(body, shapes);
  return opt.stats;
}

OptStats run_dce(std::vector<StmtPtr>& body) {
  Optimizer opt;
  opt.dce(body);
  return opt.stats;
}

void simplify_body(std::vector<StmtPtr>& body) {
  Optimizer opt;
  opt.simplify_all(body);
}

OptStats optimize(std::vector<StmtPtr>& body, const std::map<std::string, Shape>& param_shapes,
                  bool enable_wlf) {
  Optimizer opt;
  opt.toplevel_cleanup(body);
  opt.simplify_all(body);
  opt.convert_modarrays(body, param_shapes);
  if (enable_wlf) {
    for (int guard = 0; guard < 4096; ++guard) {
      if (!opt.fold_step(body)) break;
    }
    for (int guard = 0; guard < 4096; ++guard) {
      if (!opt.mod_split_step(body)) break;
    }
  }
  opt.dce(body);
  return opt.stats;
}

}  // namespace saclo::sac
