#include "sac/parser.hpp"

#include "core/fmt.hpp"

namespace saclo::sac {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Module parse_module() {
    Module mod;
    while (!at(Tok::End)) {
      mod.functions.push_back(parse_fundef());
    }
    return mod;
  }

  ExprPtr parse_single_expression() {
    ExprPtr e = parse_expr();
    expect(Tok::End, "after expression");
    return e;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(std::size_t off = 1) const {
    return tokens_[std::min(pos_ + off, tokens_.size() - 1)];
  }
  bool at(Tok kind) const { return cur().kind == kind; }
  Token advance() { return tokens_[pos_++]; }
  bool accept(Tok kind) {
    if (at(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token expect(Tok kind, const std::string& context) {
    if (!at(kind)) {
      throw ParseError(cat("expected ", to_string(kind), " ", context, " but found ",
                           to_string(cur().kind), " ('", cur().text, "') at line ", cur().line,
                           ":", cur().col));
    }
    return advance();
  }

  [[noreturn]] void fail(const std::string& message) {
    throw ParseError(cat(message, " at line ", cur().line, ":", cur().col, " (found ",
                         to_string(cur().kind), " '", cur().text, "')"));
  }

  // --- types ---------------------------------------------------------------

  bool at_type_keyword() const {
    return at(Tok::KwInt) || at(Tok::KwFloat) || at(Tok::KwBool);
  }

  TypeSpec parse_type() {
    TypeSpec t;
    if (accept(Tok::KwInt)) {
      t.elem = ElemType::Int;
    } else if (accept(Tok::KwFloat)) {
      t.elem = ElemType::Float;
    } else if (accept(Tok::KwBool)) {
      t.elem = ElemType::Bool;
    } else {
      fail("expected a type");
    }
    if (accept(Tok::LBracket)) {
      if (accept(Tok::Star)) {
        t.kind = TypeSpec::Dims::AnyRank;
      } else {
        t.kind = TypeSpec::Dims::Described;
        do {
          if (accept(Tok::Dot)) {
            t.dims.push_back(-1);
          } else {
            Token num = expect(Tok::IntLit, "in type dimensions");
            t.dims.push_back(num.int_val);
          }
        } while (accept(Tok::Comma));
      }
      expect(Tok::RBracket, "closing type dimensions");
    }
    return t;
  }

  // --- functions & statements ----------------------------------------------

  FunDef parse_fundef() {
    FunDef fn;
    fn.line = cur().line;
    fn.return_type = parse_type();
    fn.name = expect(Tok::Ident, "as function name").text;
    expect(Tok::LParen, "after function name");
    if (!at(Tok::RParen)) {
      do {
        TypeSpec pt = parse_type();
        std::string pn = expect(Tok::Ident, "as parameter name").text;
        fn.params.emplace_back(std::move(pt), std::move(pn));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "after parameters");
    fn.body = parse_block();
    return fn;
  }

  std::vector<StmtPtr> parse_block() {
    expect(Tok::LBrace, "to open a block");
    std::vector<StmtPtr> stmts;
    while (!at(Tok::RBrace)) {
      stmts.push_back(parse_stmt());
    }
    expect(Tok::RBrace, "to close a block");
    return stmts;
  }

  StmtPtr parse_stmt() {
    if (at(Tok::KwReturn)) return parse_return();
    if (at(Tok::KwFor)) return parse_for();
    if (at(Tok::KwIf)) return parse_if();
    if (at_type_keyword()) return parse_declaration();
    if (at(Tok::Ident)) return parse_assignment();
    fail("expected a statement");
  }

  StmtPtr parse_return() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Return;
    s->line = cur().line;
    expect(Tok::KwReturn, "");
    const bool parens = accept(Tok::LParen);
    s->value = parse_expr();
    if (parens) expect(Tok::RParen, "after return value");
    expect(Tok::Semi, "after return");
    return s;
  }

  StmtPtr parse_declaration() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assign;
    s->line = cur().line;
    s->decl_type = parse_type();
    s->target = expect(Tok::Ident, "as declared variable").text;
    if (accept(Tok::Assign)) {
      s->value = parse_expr();
    }
    expect(Tok::Semi, "after declaration");
    return s;
  }

  StmtPtr parse_assignment() {
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    s->target = expect(Tok::Ident, "as assignment target").text;
    while (at(Tok::LBracket)) {
      advance();
      s->indices.push_back(parse_expr_or_array_tail());
      expect(Tok::RBracket, "after index");
    }
    expect(Tok::Assign, "in assignment");
    s->kind = s->indices.empty() ? StmtKind::Assign : StmtKind::ElemAssign;
    s->value = parse_expr();
    expect(Tok::Semi, "after assignment");
    return s;
  }

  /// Inside `a[ ... ]` the content is a normal expression; `a[[i,j]]`
  /// arrives naturally because `[i,j]` is an array literal.
  ExprPtr parse_expr_or_array_tail() { return parse_expr(); }

  StmtPtr parse_for() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::For;
    s->line = cur().line;
    expect(Tok::KwFor, "");
    expect(Tok::LParen, "after 'for'");
    s->target = expect(Tok::Ident, "as loop variable").text;
    expect(Tok::Assign, "in loop initialiser");
    s->for_init = parse_expr();
    expect(Tok::Semi, "after loop initialiser");
    s->for_cond = parse_expr();
    expect(Tok::Semi, "after loop condition");
    // Increment: `i++`, `i = i + k`, or `i = <expr>` (treated as
    // arbitrary reassignment with step stored as full expression).
    std::string iv = expect(Tok::Ident, "in loop increment").text;
    if (iv != s->target) fail(cat("loop increments variable '", iv, "', expected '", s->target, "'"));
    if (accept(Tok::PlusPlus)) {
      s->for_step = make_int(1);
    } else {
      expect(Tok::Assign, "in loop increment");
      ExprPtr rhs = parse_expr();
      // Normalise `i = i + k` to step k; otherwise keep `i = expr` by
      // encoding step as (expr - i), evaluated each iteration.
      if (rhs->kind == ExprKind::BinOp && rhs->bin_op == BinOpKind::Add &&
          rhs->args[0]->kind == ExprKind::Var && rhs->args[0]->name == s->target) {
        s->for_step = std::move(rhs->args[1]);
      } else {
        s->for_step = make_bin(BinOpKind::Sub, std::move(rhs), make_var(s->target));
      }
    }
    expect(Tok::RParen, "after loop header");
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::If;
    s->line = cur().line;
    expect(Tok::KwIf, "");
    expect(Tok::LParen, "after 'if'");
    s->value = parse_expr();
    expect(Tok::RParen, "after condition");
    s->body = parse_block();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        s->else_body.push_back(parse_if());
      } else {
        s->else_body = parse_block();
      }
    }
    return s;
  }

  // --- expressions -----------------------------------------------------------
  // Precedence (low to high):
  //   || ; && ; == != ; < <= > >= ; ++ ; + - ; * / % ; unary ; postfix.

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(Tok::OrOr)) {
      int line = advance().line;
      ExprPtr e = make_bin(BinOpKind::Or, std::move(lhs), parse_and());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_equality();
    while (at(Tok::AndAnd)) {
      int line = advance().line;
      ExprPtr e = make_bin(BinOpKind::And, std::move(lhs), parse_equality());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    while (at(Tok::Eq) || at(Tok::Ne)) {
      BinOpKind op = at(Tok::Eq) ? BinOpKind::Eq : BinOpKind::Ne;
      int line = advance().line;
      ExprPtr e = make_bin(op, std::move(lhs), parse_relational());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_concat();
    while (at(Tok::Lt) || at(Tok::Le) || at(Tok::Gt) || at(Tok::Ge)) {
      BinOpKind op = at(Tok::Lt)   ? BinOpKind::Lt
                     : at(Tok::Le) ? BinOpKind::Le
                     : at(Tok::Gt) ? BinOpKind::Gt
                                   : BinOpKind::Ge;
      int line = advance().line;
      ExprPtr e = make_bin(op, std::move(lhs), parse_concat());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_concat() {
    ExprPtr lhs = parse_additive();
    while (at(Tok::PlusPlus)) {
      int line = advance().line;
      ExprPtr e = make_bin(BinOpKind::Concat, std::move(lhs), parse_additive());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      BinOpKind op = at(Tok::Plus) ? BinOpKind::Add : BinOpKind::Sub;
      int line = advance().line;
      ExprPtr e = make_bin(op, std::move(lhs), parse_multiplicative());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
      BinOpKind op = at(Tok::Star)    ? BinOpKind::Mul
                     : at(Tok::Slash) ? BinOpKind::Div
                                      : BinOpKind::Mod;
      int line = advance().line;
      ExprPtr e = make_bin(op, std::move(lhs), parse_unary());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(Tok::Minus) || at(Tok::Not)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::UnOp;
      e->un_op = at(Tok::Minus) ? UnOpKind::Neg : UnOpKind::Not;
      e->line = advance().line;
      e->args.push_back(parse_unary());
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (at(Tok::LBracket)) {
      int line = advance().line;
      ExprPtr idx = parse_expr();
      expect(Tok::RBracket, "after index");
      e = make_select(std::move(e), std::move(idx));
      e->line = line;
    }
    return e;
  }

  ExprPtr parse_primary() {
    const int line = cur().line;
    if (at(Tok::IntLit)) {
      ExprPtr e = make_int(advance().int_val);
      e->line = line;
      return e;
    }
    if (at(Tok::FloatLit)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::FloatLit;
      e->float_val = advance().float_val;
      e->line = line;
      return e;
    }
    if (at(Tok::KwTrue) || at(Tok::KwFalse)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::BoolLit;
      e->int_val = at(Tok::KwTrue) ? 1 : 0;
      advance();
      e->line = line;
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::RParen, "after parenthesised expression");
      return e;
    }
    if (at(Tok::LBracket)) {
      advance();
      std::vector<ExprPtr> elems;
      if (!at(Tok::RBracket)) {
        do {
          elems.push_back(parse_expr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::RBracket, "after array literal");
      ExprPtr e = make_array_lit(std::move(elems));
      e->line = line;
      return e;
    }
    if (at(Tok::KwWith)) return parse_with();
    if (at(Tok::Ident)) {
      std::string name = advance().text;
      if (accept(Tok::LParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Call;
        e->name = std::move(name);
        e->line = line;
        if (!at(Tok::RParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "after call arguments");
        return e;
      }
      ExprPtr e = make_var(std::move(name));
      e->line = line;
      return e;
    }
    fail("expected an expression");
  }

  // --- with-loops -------------------------------------------------------------

  ExprPtr parse_with() {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::With;
    e->line = cur().line;
    expect(Tok::KwWith, "");
    expect(Tok::LBrace, "after 'with'");
    while (!at(Tok::RBrace)) {
      e->generators.push_back(parse_generator());
    }
    expect(Tok::RBrace, "after generators");
    expect(Tok::Colon, "before with-loop operation");
    e->op = parse_with_op();
    return e;
  }

  Generator parse_generator() {
    Generator g;
    expect(Tok::LParen, "to open a generator");
    g.lower = parse_bound();
    if (accept(Tok::Le)) {
      g.lower_inclusive = true;
    } else {
      expect(Tok::Lt, "in generator lower bound");
      g.lower_inclusive = false;
    }
    parse_generator_var(g);
    if (accept(Tok::Le)) {
      g.upper_inclusive = true;
    } else {
      expect(Tok::Lt, "in generator upper bound");
      g.upper_inclusive = false;
    }
    g.upper = parse_bound();
    if (accept(Tok::KwStep)) {
      g.step = parse_concat();
    }
    if (accept(Tok::KwWidth)) {
      // `width` without `step` parses but is rejected by the checker.
      g.width = parse_concat();
    }
    expect(Tok::RParen, "to close a generator");
    if (at(Tok::LBrace)) {
      g.body = parse_block();
    }
    expect(Tok::Colon, "before generator value");
    g.value = parse_expr();
    expect(Tok::Semi, "after generator value");
    return g;
  }

  /// `.` or an expression. Bounds parse below the relational level so
  /// that the generator's own `<=`/`<` separators are not consumed as
  /// comparison operators.
  ExprPtr parse_bound() {
    if (accept(Tok::Dot)) return nullptr;
    return parse_concat();
  }

  void parse_generator_var(Generator& g) {
    if (accept(Tok::LBracket)) {
      g.vector_var = false;
      do {
        g.vars.push_back(expect(Tok::Ident, "in generator index pattern").text);
      } while (accept(Tok::Comma));
      expect(Tok::RBracket, "after generator index pattern");
      return;
    }
    g.vector_var = true;
    g.vars.push_back(expect(Tok::Ident, "as generator index variable").text);
  }

  WithOp parse_with_op() {
    WithOp op;
    if (accept(Tok::KwGenarray)) {
      op.kind = WithOpKind::Genarray;
      expect(Tok::LParen, "after 'genarray'");
      op.shape_or_target = parse_expr();
      if (accept(Tok::Comma)) {
        op.default_value = parse_expr();
      }
      expect(Tok::RParen, "after genarray arguments");
      return op;
    }
    if (accept(Tok::KwFold)) {
      op.kind = WithOpKind::Fold;
      expect(Tok::LParen, "after 'fold'");
      // Reduction operator: +, *, or an identifier (min/max).
      if (accept(Tok::Plus)) {
        op.fold_op = "+";
      } else if (accept(Tok::Star)) {
        op.fold_op = "*";
      } else {
        op.fold_op = expect(Tok::Ident, "as fold operator").text;
      }
      expect(Tok::Comma, "after fold operator");
      op.shape_or_target = parse_expr();  // the neutral element
      expect(Tok::RParen, "after fold arguments");
      return op;
    }
    expect(Tok::KwModarray, "as with-loop operation");
    op.kind = WithOpKind::Modarray;
    expect(Tok::LParen, "after 'modarray'");
    op.shape_or_target = parse_expr();
    expect(Tok::RParen, "after modarray argument");
    return op;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Module parse(const std::string& source) { return Parser(lex(source)).parse_module(); }

ExprPtr parse_expression(const std::string& source) {
  return Parser(lex(source)).parse_single_expression();
}

}  // namespace saclo::sac
