#include "sac/stdlib.hpp"

#include "core/fmt.hpp"
#include "sac/parser.hpp"

namespace saclo::sac {

std::string prelude_source() {
  return R"(
// --- mini-SaC prelude ------------------------------------------------------
// Pure SaC definitions of the classic array operations. Everything is
// shape-generic; the specialiser fixes shapes per call site.

int[*] iota(int n) {
  v = with { ([0] <= [i] < [n]) : i; } : genarray([n]);
  return (v);
}

int[*] vreverse(int[*] v) {
  n = shape(v)[0];
  r = with { ([0] <= [i] < [n]) : v[[n - 1 - i]]; } : genarray([n]);
  return (r);
}

int[*] rotate(int[*] v, int k) {
  n = shape(v)[0];
  r = with { ([0] <= [i] < [n]) : v[[(i + k) % n]]; } : genarray([n]);
  return (r);
}

int[*] take(int[*] v, int k) {
  t = with { ([0] <= [i] < [k]) : v[[i]]; } : genarray([k]);
  return (t);
}

int[*] drop(int[*] v, int k) {
  n = shape(v)[0];
  t = with { ([0] <= [i] < [n - k]) : v[[i + k]]; } : genarray([n - k]);
  return (t);
}

int vsum(int[*] v) {
  n = shape(v)[0];
  s = with { ([0] <= [i] < [n]) : v[[i]]; } : fold(+, 0);
  return (s);
}

int vprod(int[*] v) {
  n = shape(v)[0];
  p = with { ([0] <= [i] < [n]) : v[[i]]; } : fold(*, 1);
  return (p);
}

int vmin(int[*] v) {
  n = shape(v)[0];
  m = with { ([0] <= [i] < [n]) : v[[i]]; } : fold(min, 9223372036854775807);
  return (m);
}

int vmax(int[*] v) {
  n = shape(v)[0];
  m = with { ([0] <= [i] < [n]) : v[[i]]; } : fold(max, 0 - 9223372036854775807);
  return (m);
}

int dot(int[*] a, int[*] b) {
  n = shape(a)[0];
  s = with { ([0] <= [i] < [n]) : a[[i]] * b[[i]]; } : fold(+, 0);
  return (s);
}

int[*] transpose(int[*] m) {
  r = shape(m)[0];
  c = shape(m)[1];
  t = with { ([0,0] <= [i,j] < [c,r]) : m[[j,i]]; } : genarray([c,r]);
  return (t);
}

int[*] matmul(int[*] a, int[*] b) {
  n = shape(a)[0];
  k = shape(a)[1];
  m = shape(b)[1];
  c = with {
    ([0,0] <= [i,j] < [n,m]) {
      acc = with { ([0] <= [p] < [k]) : a[[i,p]] * b[[p,j]]; } : fold(+, 0);
    } : acc;
  } : genarray([n,m]);
  return (c);
}

int[*] outer(int[*] a, int[*] b) {
  n = shape(a)[0];
  m = shape(b)[0];
  o = with { ([0,0] <= [i,j] < [n,m]) : a[[i]] * b[[j]]; } : genarray([n,m]);
  return (o);
}

int[*] clampv(int[*] v, int lo, int hi) {
  n = shape(v)[0];
  c = with { ([0] <= [i] < [n]) : min(max(v[[i]], lo), hi); } : genarray([n]);
  return (c);
}

int[*] convolve1d(int[*] v, int[*] k) {
  n = shape(v)[0];
  m = shape(k)[0];
  c = with {
    ([0] <= [i] < [n - m + 1]) {
      acc = with { ([0] <= [p] < [m]) : v[[i + p]] * k[[p]]; } : fold(+, 0);
    } : acc;
  } : genarray([n - m + 1]);
  return (c);
}

int[*] histogram(int[*] v, int bins) {
  n = shape(v)[0];
  h = with {
    ([0] <= [b] < [bins]) {
      count = with { ([0] <= [i] < [n]) : toi(v[[i]] == b); } : fold(+, 0);
    } : count;
  } : genarray([bins]);
  return (h);
}
)";
}

std::size_t link_prelude(Module& module) {
  Module prelude = parse(prelude_source());
  for (const FunDef& f : prelude.functions) {
    if (module.find(f.name) != nullptr) {
      throw ParseError(cat("link_prelude: function '", f.name, "' already defined"));
    }
  }
  const std::size_t n = prelude.functions.size();
  for (FunDef& f : prelude.functions) {
    module.functions.push_back(std::move(f));
  }
  return n;
}

}  // namespace saclo::sac
