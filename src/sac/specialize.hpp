#pragma once

#include <optional>
#include <vector>

#include "sac/ast.hpp"
#include "sac/value.hpp"

namespace saclo::sac {

/// Raised when specialisation cannot proceed (recursive calls, shape
/// mismatches discovered at specialisation time, ...).
class SpecializeError : public Error {
 public:
  using Error::Error;
};

/// Compile-time description of one entry-function argument: its element
/// type, concrete shape, and — for arguments like tiler matrices that
/// are known at compile time — its full value.
///
/// This plays the role of sac2c's function specialisation: the paper's
/// pipeline compiles the downscaler for fixed frame sizes and fixed
/// tiler specifications, which is what enables WLF to produce the
/// concrete generators of Figure 8.
struct ArgSpec {
  ElemType elem = ElemType::Int;
  Shape shape;
  std::optional<Value> constant;

  static ArgSpec array(ElemType e, Shape s) { return {e, std::move(s), std::nullopt}; }
  static ArgSpec value(Value v) {
    ArgSpec a;
    a.elem = v.is_int() ? ElemType::Int : ElemType::Float;
    a.shape = v.shape();
    a.constant = std::move(v);
    return a;
  }
};

/// Specialises `fn` of `mod` for the given argument descriptions:
/// inlines all user-function calls, propagates and folds constants
/// (shapes, tiler matrices, generator bounds), and resolves `.` bounds.
/// The result is a self-contained FunDef with the same parameter list,
/// runnable by the interpreter and consumable by the optimiser and the
/// backends.
FunDef specialize(const Module& mod, const std::string& fn, const std::vector<ArgSpec>& args);

/// Builds a literal expression from a constant value (rank <= 2).
ExprPtr literal_expr(const Value& v);

/// Attempts to read an expression as a compile-time constant (literals
/// and literal arrays only — no environment).
std::optional<Value> literal_value(const Expr& e);

}  // namespace saclo::sac
