#pragma once

#include <string>
#include <vector>

#include "sac/ast.hpp"

namespace saclo::sac {

/// Raised on static semantic errors (unknown names, arity mismatches,
/// element-type conflicts, malformed generators).
class TypeError : public Error {
 public:
  using Error::Error;
};

/// Statically checked properties of an expression: the element type and
/// (when derivable) the rank. Shapes are resolved later, during
/// specialisation; the checker's job is to reject programs that cannot
/// be given a meaning at all.
struct CheckedType {
  ElemType elem = ElemType::Int;
  int rank = -1;  ///< -1 == unknown
};

/// Typechecks a module. Throws TypeError on the first error. Returns
/// the number of functions checked (for reporting).
std::size_t typecheck(const Module& mod);

}  // namespace saclo::sac
