#include "sac/pipeline.hpp"

#include "sac/typecheck.hpp"

namespace saclo::sac {

CompiledFunction compile(const Module& mod, const std::string& fn,
                         const std::vector<ArgSpec>& args, const CompileOptions& options) {
  typecheck(mod);
  CompiledFunction out;
  out.fn = specialize(mod, fn, args);
  for (std::size_t i = 0; i < out.fn.params.size() && i < args.size(); ++i) {
    out.param_shapes[out.fn.params[i].second] = args[i].shape;
    out.param_elems[out.fn.params[i].second] = args[i].elem;
  }
  out.stats = optimize(out.fn.body, out.param_shapes, options.enable_wlf);
  return out;
}

}  // namespace saclo::sac
