#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace saclo::sac {

/// Raised on malformed source (lexing or parsing).
class ParseError : public Error {
 public:
  using Error::Error;
};

enum class Tok {
  End,
  Ident,
  IntLit,
  FloatLit,
  // keywords
  KwWith,
  KwGenarray,
  KwModarray,
  KwFold,
  KwStep,
  KwWidth,
  KwFor,
  KwIf,
  KwElse,
  KwReturn,
  KwInt,
  KwFloat,
  KwBool,
  KwTrue,
  KwFalse,
  // punctuation / operators
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Colon,
  Dot,
  Star,
  Plus,
  PlusPlus,
  Minus,
  Slash,
  Percent,
  Assign,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Not,
  AndAnd,
  OrOr
};

std::string to_string(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;
  std::int64_t int_val = 0;
  double float_val = 0.0;
  int line = 1;
  int col = 1;
};

/// Tokenises mini-SaC source. Supports `//` and `/* */` comments.
/// Throws ParseError on unknown characters or malformed literals.
std::vector<Token> lex(const std::string& source);

}  // namespace saclo::sac
