#include "sac/printer.hpp"

#include "core/fmt.hpp"

namespace saclo::sac {

namespace {

std::string ind(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

int precedence(BinOpKind op) {
  switch (op) {
    case BinOpKind::Or: return 1;
    case BinOpKind::And: return 2;
    case BinOpKind::Eq:
    case BinOpKind::Ne: return 3;
    case BinOpKind::Lt:
    case BinOpKind::Le:
    case BinOpKind::Gt:
    case BinOpKind::Ge: return 4;
    case BinOpKind::Concat: return 5;
    case BinOpKind::Add:
    case BinOpKind::Sub: return 6;
    case BinOpKind::Mul:
    case BinOpKind::Div:
    case BinOpKind::Mod: return 7;
  }
  return 0;
}

std::string print_expr(const Expr& e, int indent, int parent_prec);

std::string print_generator(const Generator& g, int indent) {
  std::string s = ind(indent) + "(";
  s += g.lower ? print_expr(*g.lower, indent, 0) : ".";
  s += g.lower_inclusive ? " <= " : " < ";
  if (g.vector_var) {
    s += g.vars[0];
  } else {
    s += "[" + join(g.vars, ",") + "]";
  }
  s += g.upper_inclusive ? " <= " : " < ";
  s += g.upper ? print_expr(*g.upper, indent, 0) : ".";
  if (g.step) s += " step " + print_expr(*g.step, indent, 0);
  if (g.width) s += " width " + print_expr(*g.width, indent, 0);
  s += ")";
  if (!g.body.empty()) {
    s += " {\n";
    s += print(g.body, indent + 1);
    s += ind(indent) + "}";
  }
  s += " : " + print_expr(*g.value, indent, 0) + ";\n";
  return s;
}

std::string print_expr(const Expr& e, int indent, int parent_prec) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return std::to_string(e.int_val);
    case ExprKind::FloatLit:
      return fixed(e.float_val, 6);
    case ExprKind::BoolLit:
      return e.int_val ? "true" : "false";
    case ExprKind::Var:
      return e.name;
    case ExprKind::ArrayLit: {
      std::vector<std::string> parts;
      parts.reserve(e.args.size());
      for (const ExprPtr& a : e.args) parts.push_back(print_expr(*a, indent, 0));
      return "[" + join(parts, ",") + "]";
    }
    case ExprKind::BinOp: {
      const int prec = precedence(e.bin_op);
      std::string s = print_expr(*e.args[0], indent, prec) + " " + to_string(e.bin_op) + " " +
                      print_expr(*e.args[1], indent, prec + 1);
      if (prec < parent_prec) s = "(" + s + ")";
      return s;
    }
    case ExprKind::UnOp: {
      std::string s = (e.un_op == UnOpKind::Neg ? "-" : "!") + print_expr(*e.args[0], indent, 8);
      return s;
    }
    case ExprKind::Call: {
      std::vector<std::string> parts;
      parts.reserve(e.args.size());
      for (const ExprPtr& a : e.args) parts.push_back(print_expr(*a, indent, 0));
      return e.name + "(" + join(parts, ", ") + ")";
    }
    case ExprKind::Select:
      return print_expr(*e.args[0], indent, 9) + "[" + print_expr(*e.args[1], indent, 0) + "]";
    case ExprKind::With: {
      std::string s = "with {\n";
      for (const Generator& g : e.generators) s += print_generator(g, indent + 1);
      s += ind(indent) + "} : ";
      if (e.op.kind == WithOpKind::Genarray) {
        s += "genarray(" + print_expr(*e.op.shape_or_target, indent, 0);
        if (e.op.default_value) s += ", " + print_expr(*e.op.default_value, indent, 0);
        s += ")";
      } else if (e.op.kind == WithOpKind::Fold) {
        s += "fold(" + e.op.fold_op + ", " + print_expr(*e.op.shape_or_target, indent, 0) + ")";
      } else {
        s += "modarray(" + print_expr(*e.op.shape_or_target, indent, 0) + ")";
      }
      return s;
    }
  }
  return "?";
}

}  // namespace

std::string print(const Expr& expr, int indent) { return print_expr(expr, indent, 0); }

std::string print(const Stmt& stmt, int indent) {
  switch (stmt.kind) {
    case StmtKind::Assign: {
      std::string s = ind(indent);
      if (stmt.decl_type) s += stmt.decl_type->to_string() + " ";
      s += stmt.target;
      if (stmt.value) s += " = " + print(*stmt.value, indent);
      return s + ";\n";
    }
    case StmtKind::ElemAssign: {
      std::string s = ind(indent) + stmt.target;
      for (const ExprPtr& i : stmt.indices) s += "[" + print(*i, indent) + "]";
      return s + " = " + print(*stmt.value, indent) + ";\n";
    }
    case StmtKind::For: {
      std::string s = ind(indent) + "for (" + stmt.target + " = " + print(*stmt.for_init) + "; " +
                      print(*stmt.for_cond) + "; " + stmt.target + " = " + stmt.target + " + " +
                      print(*stmt.for_step) + ") {\n";
      s += print(stmt.body, indent + 1);
      return s + ind(indent) + "}\n";
    }
    case StmtKind::If: {
      std::string s = ind(indent) + "if (" + print(*stmt.value) + ") {\n";
      s += print(stmt.body, indent + 1);
      s += ind(indent) + "}";
      if (!stmt.else_body.empty()) {
        s += " else {\n" + print(stmt.else_body, indent + 1) + ind(indent) + "}";
      }
      return s + "\n";
    }
    case StmtKind::Return:
      return ind(indent) + "return (" + print(*stmt.value, indent) + ");\n";
  }
  return "?";
}

std::string print(const std::vector<StmtPtr>& block, int indent) {
  std::string s;
  for (const StmtPtr& st : block) s += print(*st, indent);
  return s;
}

std::string print(const FunDef& fn) {
  std::vector<std::string> params;
  params.reserve(fn.params.size());
  for (const auto& [t, n] : fn.params) params.push_back(t.to_string() + " " + n);
  std::string s = fn.return_type.to_string() + " " + fn.name + "(" + join(params, ", ") + ")\n{\n";
  s += print(fn.body, 1);
  return s + "}\n";
}

std::string print(const Module& mod) {
  std::string s;
  for (const FunDef& f : mod.functions) {
    s += print(f);
    s += "\n";
  }
  return s;
}

}  // namespace saclo::sac
