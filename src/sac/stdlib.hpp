#pragma once

#include <string>

#include "sac/ast.hpp"

namespace saclo::sac {

/// The mini-SaC prelude: the slice of SaC's standard array library the
/// paper's programs and the examples build on, written in mini-SaC
/// itself (SaC's own stdlib is SaC code too — that is the point of the
/// "without losing abstractions" argument).
///
/// Functions (all total on their documented domains):
///   iota(n)              -> [0, 1, ..., n-1]
///   vreverse(v)          -> v reversed
///   rotate(v, k)         -> v rotated left by k (k >= 0)
///   take(v, k), drop(v, k)
///   vsum(v), vprod(v), vmin(v), vmax(v)      (fold-based reductions)
///   dot(a, b)            -> inner product
///   transpose(m)         -> 2-D transpose
///   matmul(a, b)         -> dense 2-D matrix product
///   outer(a, b)          -> outer product of two vectors
///   clampv(v, lo, hi)    -> elementwise clamp
///   convolve1d(v, k)     -> valid 1-D convolution (len(v)-len(k)+1)
///   histogram(v, bins)   -> counts of v's values in [0, bins)
std::string prelude_source();

/// Parses the prelude and appends its functions to `module` (names must
/// not collide). Returns the number of functions added.
std::size_t link_prelude(Module& module);

}  // namespace saclo::sac
