#include "sac/ast.hpp"

#include "core/fmt.hpp"

namespace saclo::sac {

std::string to_string(ElemType t) {
  switch (t) {
    case ElemType::Int: return "int";
    case ElemType::Float: return "float";
    case ElemType::Bool: return "bool";
  }
  return "?";
}

std::string to_string(BinOpKind op) {
  switch (op) {
    case BinOpKind::Add: return "+";
    case BinOpKind::Sub: return "-";
    case BinOpKind::Mul: return "*";
    case BinOpKind::Div: return "/";
    case BinOpKind::Mod: return "%";
    case BinOpKind::Concat: return "++";
    case BinOpKind::Lt: return "<";
    case BinOpKind::Le: return "<=";
    case BinOpKind::Gt: return ">";
    case BinOpKind::Ge: return ">=";
    case BinOpKind::Eq: return "==";
    case BinOpKind::Ne: return "!=";
    case BinOpKind::And: return "&&";
    case BinOpKind::Or: return "||";
  }
  return "?";
}

std::string TypeSpec::to_string() const {
  std::string s = sac::to_string(elem);
  switch (kind) {
    case Dims::Scalar:
      return s;
    case Dims::AnyRank:
      return s + "[*]";
    case Dims::Described: {
      std::vector<std::string> parts;
      parts.reserve(dims.size());
      for (std::int64_t d : dims) parts.push_back(d < 0 ? "." : std::to_string(d));
      return s + "[" + join(parts, ",") + "]";
    }
  }
  return s;
}

namespace {

ExprPtr clone_opt(const ExprPtr& e) { return e ? e->clone() : nullptr; }

}  // namespace

Generator clone_generator(const Generator& g) {
  Generator out;
  out.lower = clone_opt(g.lower);
  out.lower_inclusive = g.lower_inclusive;
  out.upper = clone_opt(g.upper);
  out.upper_inclusive = g.upper_inclusive;
  out.vars = g.vars;
  out.vector_var = g.vector_var;
  out.step = clone_opt(g.step);
  out.width = clone_opt(g.width);
  out.body = clone_block(g.body);
  out.value = clone_opt(g.value);
  return out;
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->line = line;
  out->int_val = int_val;
  out->float_val = float_val;
  out->name = name;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) out->args.push_back(clone_opt(a));
  out->generators.reserve(generators.size());
  for (const Generator& g : generators) out->generators.push_back(clone_generator(g));
  out->op.kind = op.kind;
  out->op.shape_or_target = clone_opt(op.shape_or_target);
  out->op.default_value = clone_opt(op.default_value);
  out->op.fold_op = op.fold_op;
  return out;
}

StmtPtr Stmt::clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->line = line;
  out->target = target;
  out->decl_type = decl_type;
  out->indices.reserve(indices.size());
  for (const ExprPtr& i : indices) out->indices.push_back(clone_opt(i));
  out->value = clone_opt(value);
  out->for_init = clone_opt(for_init);
  out->for_cond = clone_opt(for_cond);
  out->for_step = clone_opt(for_step);
  out->body = clone_block(body);
  out->else_body = clone_block(else_body);
  return out;
}

std::vector<StmtPtr> clone_block(const std::vector<StmtPtr>& block) {
  std::vector<StmtPtr> out;
  out.reserve(block.size());
  for (const StmtPtr& s : block) out.push_back(s->clone());
  return out;
}

const FunDef* Module::find(const std::string& name) const {
  for (const FunDef& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

ExprPtr make_int(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->int_val = v;
  return e;
}

ExprPtr make_var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Var;
  e->name = std::move(name);
  return e;
}

ExprPtr make_array_lit(std::vector<ExprPtr> elems) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ArrayLit;
  e->args = std::move(elems);
  return e;
}

ExprPtr make_index_lit(const Index& idx) {
  std::vector<ExprPtr> elems;
  elems.reserve(idx.size());
  for (std::int64_t v : idx) elems.push_back(make_int(v));
  return make_array_lit(std::move(elems));
}

ExprPtr make_bin(BinOpKind op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::BinOp;
  e->bin_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr make_select(ExprPtr array, ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Select;
  e->args.push_back(std::move(array));
  e->args.push_back(std::move(index));
  return e;
}

}  // namespace saclo::sac
