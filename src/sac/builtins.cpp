#include "sac/builtins.hpp"

#include <algorithm>
#include <cmath>

#include "core/fmt.hpp"

namespace saclo::sac {

namespace {

Value shape_of(const Value& v) {
  const Index dims = v.shape().dims();
  IntArray out(Shape{static_cast<std::int64_t>(dims.size())});
  for (std::size_t i = 0; i < dims.size(); ++i) out[static_cast<std::int64_t>(i)] = dims[i];
  return Value(std::move(out));
}

Value concat(const Value& a, const Value& b) {
  // Matrix case: CAT(paving, fitting) joins the columns of two
  // matrices with equal row counts (the tiler composition of the
  // paper's Figure 4).
  if (a.shape().rank() == 2 && b.shape().rank() == 2 && a.is_int() && b.is_int()) {
    const std::int64_t rows = a.shape()[0];
    if (b.shape()[0] != rows) {
      throw EvalError(cat("CAT of matrices with different row counts: ", a.shape().to_string(),
                          " and ", b.shape().to_string()));
    }
    const std::int64_t ca = a.shape()[1];
    const std::int64_t cb = b.shape()[1];
    IntArray out(Shape{rows, ca + cb});
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < ca; ++c) out[r * (ca + cb) + c] = a.ints()[r * ca + c];
      for (std::int64_t c = 0; c < cb; ++c) out[r * (ca + cb) + ca + c] = b.ints()[r * cb + c];
    }
    return Value(std::move(out));
  }
  if (a.shape().rank() > 1 || b.shape().rank() > 1) {
    throw EvalError(cat("CAT/++ expects vectors, got shapes ", a.shape().to_string(), " and ",
                        b.shape().to_string()));
  }
  auto as_vec = [](const Value& v) {
    return v.shape().rank() == 0 ? Index{v.as_int()} : v.as_index_vector();
  };
  Index va = as_vec(a);
  const Index vb = as_vec(b);
  va.insert(va.end(), vb.begin(), vb.end());
  IntArray out(Shape{static_cast<std::int64_t>(va.size())});
  for (std::size_t i = 0; i < va.size(); ++i) out[static_cast<std::int64_t>(i)] = va[i];
  return Value(std::move(out));
}

Value mv(const Value& m, const Value& v) {
  if (m.shape().rank() != 2 || v.shape().rank() != 1) {
    throw EvalError(cat("MV expects a matrix and a vector, got ", m.shape().to_string(), " and ",
                        v.shape().to_string()));
  }
  const IntArray& mat = m.ints();
  const Index vec = v.as_index_vector();
  const std::int64_t rows = mat.shape()[0];
  const std::int64_t cols = mat.shape()[1];
  if (cols != static_cast<std::int64_t>(vec.size())) {
    throw EvalError(cat("MV: matrix has ", cols, " columns but vector has ", vec.size(),
                        " elements"));
  }
  IntArray out(Shape{rows});
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t acc = 0;
    for (std::int64_t c = 0; c < cols; ++c) {
      acc += mat[r * cols + c] * vec[static_cast<std::size_t>(c)];
    }
    out[r] = acc;
  }
  return Value(std::move(out));
}

template <typename Fn>
Value scalar_binary(const std::string& name, const Value& a, const Value& b, Fn&& fn) {
  if (a.is_int() != b.is_int()) {
    throw EvalError(cat(name, ": mixed int/float operands"));
  }
  if (a.is_int()) return Value::from_int(fn(a.as_int(), b.as_int()));
  return Value::from_double(fn(a.as_double(), b.as_double()));
}

}  // namespace

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> names = {"shape", "dim", "MV",  "CAT", "min",
                                                 "max",   "abs", "sum", "tod", "toi"};
  return names;
}

bool is_builtin(const std::string& name) {
  const auto& names = builtin_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Value eval_builtin(const std::string& name, const std::vector<Value>& args) {
  auto need = [&](std::size_t n) {
    if (args.size() != n) {
      throw EvalError(cat(name, " expects ", n, " argument(s), got ", args.size()));
    }
  };
  if (name == "shape") {
    need(1);
    return shape_of(args[0]);
  }
  if (name == "dim") {
    need(1);
    return Value::from_int(static_cast<std::int64_t>(args[0].shape().rank()));
  }
  if (name == "MV") {
    need(2);
    return mv(args[0], args[1]);
  }
  if (name == "CAT") {
    need(2);
    return concat(args[0], args[1]);
  }
  if (name == "min") {
    need(2);
    return scalar_binary("min", args[0], args[1], [](auto a, auto b) { return std::min(a, b); });
  }
  if (name == "max") {
    need(2);
    return scalar_binary("max", args[0], args[1], [](auto a, auto b) { return std::max(a, b); });
  }
  if (name == "abs") {
    need(1);
    if (args[0].is_int()) return Value::from_int(std::llabs(args[0].as_int()));
    return Value::from_double(std::fabs(args[0].as_double()));
  }
  if (name == "sum") {
    need(1);
    if (args[0].is_int()) {
      std::int64_t acc = 0;
      for (std::int64_t i = 0; i < args[0].ints().elements(); ++i) acc += args[0].ints()[i];
      return Value::from_int(acc);
    }
    double acc = 0;
    for (std::int64_t i = 0; i < args[0].floats().elements(); ++i) acc += args[0].floats()[i];
    return Value::from_double(acc);
  }
  if (name == "tod") {
    need(1);
    return Value::from_double(args[0].as_double());
  }
  if (name == "toi") {
    need(1);
    if (args[0].is_int()) return Value::from_int(args[0].as_int());
    return Value::from_int(static_cast<std::int64_t>(args[0].as_double()));
  }
  throw EvalError(cat("unknown builtin '", name, "'"));
}

}  // namespace saclo::sac
