#pragma once

#include <string>

#include "sac/ast.hpp"

namespace saclo::sac {

/// Renders AST nodes back to (normalised) mini-SaC source. Used by the
/// golden tests that pin the shape of optimised with-loops (the
/// paper's Figure 8) and by the examples to show before/after WLF.
std::string print(const Expr& expr, int indent = 0);
std::string print(const Stmt& stmt, int indent = 0);
std::string print(const std::vector<StmtPtr>& block, int indent = 0);
std::string print(const FunDef& fn);
std::string print(const Module& mod);

}  // namespace saclo::sac
