#pragma once

#include <map>
#include <string>
#include <vector>

#include "sac/ast.hpp"
#include "sac/specialize.hpp"
#include "sac/wlf.hpp"

namespace saclo::sac {

/// Options of the high-level compilation pipeline.
struct CompileOptions {
  /// Run With-Loop Folding (+ %-elimination splitting). Disabling this
  /// reproduces the paper's "no WLF" ablation.
  bool enable_wlf = true;
};

/// A fully specialised and optimised function: the unit both backends
/// (sequential host lowering and CUDA code generation) consume.
struct CompiledFunction {
  FunDef fn;
  OptStats stats;
  std::map<std::string, Shape> param_shapes;
  std::map<std::string, ElemType> param_elems;
};

/// The sac2c-style frontend pipeline used throughout this repo:
/// parse (done by the caller) -> typecheck -> specialise for concrete
/// argument shapes/values -> optimise (modarray conversion, WLF,
/// %-elimination, DCE).
CompiledFunction compile(const Module& mod, const std::string& fn,
                         const std::vector<ArgSpec>& args, const CompileOptions& options = {});

}  // namespace saclo::sac
