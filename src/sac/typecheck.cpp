#include "sac/typecheck.hpp"

#include <map>

#include "core/fmt.hpp"
#include "sac/builtins.hpp"

namespace saclo::sac {

namespace {

int rank_of(const TypeSpec& t) {
  switch (t.kind) {
    case TypeSpec::Dims::Scalar: return 0;
    case TypeSpec::Dims::AnyRank: return -1;
    case TypeSpec::Dims::Described: return static_cast<int>(t.dims.size());
  }
  return -1;
}

class Checker {
 public:
  explicit Checker(const Module& mod) : mod_(&mod) {}

  void check_function(const FunDef& fn) {
    scopes_.clear();
    scopes_.emplace_back();
    fn_ = &fn;
    for (const auto& [t, name] : fn.params) {
      declare(name, CheckedType{t.elem, rank_of(t)}, fn.line);
    }
    bool returns = check_block(fn.body);
    if (!returns) {
      throw TypeError(cat("function '", fn.name, "' has no return statement"));
    }
  }

 private:
  using Scope = std::map<std::string, CheckedType>;

  void declare(const std::string& name, CheckedType t, int line) {
    auto [it, inserted] = scopes_.back().emplace(name, t);
    if (!inserted) {
      // Reassignment is fine in mini-SaC; element types must agree.
      if (it->second.elem != t.elem) {
        throw TypeError(cat("variable '", name, "' changes element type from ",
                            to_string(it->second.elem), " to ", to_string(t.elem), " at line ",
                            line));
      }
      it->second = t;
    }
  }

  const CheckedType* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

  bool check_block(const std::vector<StmtPtr>& block) {
    bool returns = false;
    for (const StmtPtr& s : block) {
      if (returns) {
        throw TypeError(cat("unreachable statement after return at line ", s->line));
      }
      returns = check_stmt(*s);
    }
    return returns;
  }

  bool check_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign: {
        CheckedType t{ElemType::Int, -1};
        if (s.value) {
          t = check_expr(*s.value);
        } else if (s.decl_type) {
          t = CheckedType{s.decl_type->elem, rank_of(*s.decl_type)};
        }
        if (s.decl_type && s.value && s.decl_type->elem != t.elem &&
            !(s.decl_type->elem == ElemType::Bool && t.elem == ElemType::Int)) {
          throw TypeError(cat("initialiser of '", s.target, "' has element type ",
                              to_string(t.elem), ", declared ", to_string(s.decl_type->elem),
                              " at line ", s.line));
        }
        if (s.decl_type) t.elem = s.decl_type->elem;
        declare(s.target, t, s.line);
        return false;
      }
      case StmtKind::ElemAssign: {
        const CheckedType* t = lookup(s.target);
        if (t == nullptr) {
          throw TypeError(cat("element assignment to undeclared '", s.target, "' at line ",
                              s.line));
        }
        if (t->rank == 0) {
          throw TypeError(cat("element assignment into scalar '", s.target, "' at line ",
                              s.line));
        }
        for (const ExprPtr& i : s.indices) check_expr(*i);
        const CheckedType rhs = check_expr(*s.value);
        if (rhs.elem != t->elem && !(t->elem == ElemType::Float && rhs.elem == ElemType::Int &&
                                     false)) {
          if (rhs.elem != t->elem) {
            throw TypeError(cat("assigning ", to_string(rhs.elem), " cell into ",
                                to_string(t->elem), " array '", s.target, "' at line ", s.line));
          }
        }
        return false;
      }
      case StmtKind::For: {
        const CheckedType init = check_expr(*s.for_init);
        if (init.elem == ElemType::Float) {
          throw TypeError(cat("loop variable '", s.target, "' must be integral at line ", s.line));
        }
        declare(s.target, CheckedType{ElemType::Int, 0}, s.line);
        check_expr(*s.for_cond);
        check_expr(*s.for_step);
        scopes_.emplace_back();
        const bool r = check_block(s.body);
        scopes_.pop_back();
        if (r) throw TypeError(cat("return inside for-loop at line ", s.line));
        return false;
      }
      case StmtKind::If: {
        check_expr(*s.value);
        scopes_.emplace_back();
        const bool rt = check_block(s.body);
        scopes_.pop_back();
        scopes_.emplace_back();
        const bool re = s.else_body.empty() ? false : check_block(s.else_body);
        scopes_.pop_back();
        return rt && re;
      }
      case StmtKind::Return: {
        const CheckedType t = check_expr(*s.value);
        if (fn_ != nullptr && t.elem != fn_->return_type.elem &&
            !(fn_->return_type.elem == ElemType::Bool && t.elem == ElemType::Int)) {
          throw TypeError(cat("function '", fn_->name, "' returns ", to_string(t.elem),
                              ", declared ", to_string(fn_->return_type.elem), " at line ",
                              s.line));
        }
        return true;
      }
    }
    return false;
  }

  CheckedType check_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: return {ElemType::Int, 0};
      case ExprKind::BoolLit: return {ElemType::Bool, 0};
      case ExprKind::FloatLit: return {ElemType::Float, 0};
      case ExprKind::Var: {
        const CheckedType* t = lookup(e.name);
        if (t == nullptr) throw TypeError(cat("unknown variable '", e.name, "' at line ", e.line));
        return *t;
      }
      case ExprKind::ArrayLit: {
        if (e.args.empty()) return {ElemType::Int, 1};
        CheckedType first = check_expr(*e.args[0]);
        for (std::size_t i = 1; i < e.args.size(); ++i) {
          const CheckedType t = check_expr(*e.args[i]);
          if (t.elem != first.elem) {
            throw TypeError(cat("mixed element types in array literal at line ", e.line));
          }
        }
        return {first.elem, first.rank < 0 ? -1 : first.rank + 1};
      }
      case ExprKind::BinOp: {
        const CheckedType a = check_expr(*e.args[0]);
        const CheckedType b = check_expr(*e.args[1]);
        if (e.bin_op == BinOpKind::Concat) {
          if (a.elem != b.elem) {
            throw TypeError(cat("'++' on mixed element types at line ", e.line));
          }
          return {a.elem, 1};
        }
        ElemType ea = a.elem == ElemType::Bool ? ElemType::Int : a.elem;
        ElemType eb = b.elem == ElemType::Bool ? ElemType::Int : b.elem;
        if (ea != eb) {
          throw TypeError(cat("operands of '", to_string(e.bin_op),
                              "' have mixed element types at line ", e.line));
        }
        if (e.bin_op == BinOpKind::Mod && ea == ElemType::Float) {
          throw TypeError(cat("'%' on float operands at line ", e.line));
        }
        switch (e.bin_op) {
          case BinOpKind::Lt:
          case BinOpKind::Le:
          case BinOpKind::Gt:
          case BinOpKind::Ge:
          case BinOpKind::Eq:
          case BinOpKind::Ne:
          case BinOpKind::And:
          case BinOpKind::Or:
            return {ElemType::Bool, std::max(a.rank, b.rank)};
          default:
            return {ea, a.rank < 0 || b.rank < 0 ? -1 : std::max(a.rank, b.rank)};
        }
      }
      case ExprKind::UnOp: {
        const CheckedType t = check_expr(*e.args[0]);
        return e.un_op == UnOpKind::Not ? CheckedType{ElemType::Bool, t.rank} : t;
      }
      case ExprKind::Call: {
        for (const ExprPtr& a : e.args) check_expr(*a);
        if (is_builtin(e.name)) {
          if (e.name == "shape" || e.name == "MV" || e.name == "CAT") {
            return {ElemType::Int, 1};
          }
          if (e.name == "dim" || e.name == "toi") return {ElemType::Int, 0};
          if (e.name == "tod") return {ElemType::Float, 0};
          return {ElemType::Int, -1};
        }
        const FunDef* callee = mod_->find(e.name);
        if (callee == nullptr) {
          throw TypeError(cat("call to unknown function '", e.name, "' at line ", e.line));
        }
        if (callee->params.size() != e.args.size()) {
          throw TypeError(cat("function '", e.name, "' expects ", callee->params.size(),
                              " arguments, got ", e.args.size(), " at line ", e.line));
        }
        return {callee->return_type.elem, rank_of(callee->return_type)};
      }
      case ExprKind::Select: {
        const CheckedType arr = check_expr(*e.args[0]);
        check_expr(*e.args[1]);
        if (arr.rank == 0) {
          throw TypeError(cat("selection from a scalar at line ", e.line));
        }
        return {arr.elem, -1};
      }
      case ExprKind::With: {
        // Check operation first.
        check_expr(*e.op.shape_or_target);
        if (e.op.default_value) check_expr(*e.op.default_value);
        if (e.generators.empty()) {
          throw TypeError(cat("with-loop without generators at line ", e.line));
        }
        ElemType elem = ElemType::Int;
        bool elem_known = false;
        if (e.op.kind == WithOpKind::Modarray) {
          const CheckedType t = check_expr(*e.op.shape_or_target);
          elem = t.elem;
          elem_known = true;
        } else if (e.op.kind == WithOpKind::Fold) {
          const CheckedType t = check_expr(*e.op.shape_or_target);
          if (t.rank > 0) {
            throw TypeError(cat("fold neutral must be a scalar at line ", e.line));
          }
          elem = t.elem;
          elem_known = true;
          if (e.op.fold_op != "+" && e.op.fold_op != "*" && e.op.fold_op != "min" &&
              e.op.fold_op != "max") {
            throw TypeError(cat("unsupported fold operator '", e.op.fold_op, "' at line ",
                                e.line));
          }
          for (const Generator& g : e.generators) {
            if (!g.lower || !g.upper) {
              throw TypeError(cat("fold generators need explicit bounds at line ", e.line));
            }
          }
        } else if (e.op.default_value) {
          elem = check_expr(*e.op.default_value).elem;
          elem_known = true;
        }
        for (const Generator& g : e.generators) {
          if (g.lower) check_expr(*g.lower);
          if (g.upper) check_expr(*g.upper);
          if (g.step) check_expr(*g.step);
          if (g.width && !g.step) {
            throw TypeError(cat("generator has 'width' without 'step' at line ", e.line));
          }
          if (g.width) check_expr(*g.width);
          scopes_.emplace_back();
          if (g.vector_var) {
            declare(g.vars[0], CheckedType{ElemType::Int, 1}, e.line);
          } else {
            for (const std::string& v : g.vars) declare(v, CheckedType{ElemType::Int, 0}, e.line);
          }
          if (check_block(g.body)) {
            throw TypeError(cat("return inside with-loop generator at line ", e.line));
          }
          const CheckedType cell = check_expr(*g.value);
          scopes_.pop_back();
          if (elem_known && cell.elem != elem &&
              !(elem == ElemType::Int && cell.elem == ElemType::Bool)) {
            throw TypeError(cat("generator cell element type ", to_string(cell.elem),
                                " conflicts with with-loop element type ", to_string(elem),
                                " at line ", e.line));
          }
          if (!elem_known) {
            elem = cell.elem;
            elem_known = true;
          }
        }
        return {elem == ElemType::Bool ? ElemType::Int : elem, -1};
      }
    }
    throw TypeError("unreachable expression kind");
  }

  const Module* mod_;
  const FunDef* fn_ = nullptr;
  std::vector<Scope> scopes_;
};

}  // namespace

std::size_t typecheck(const Module& mod) {
  Checker checker(mod);
  for (const FunDef& fn : mod.functions) {
    checker.check_function(fn);
  }
  return mod.functions.size();
}

}  // namespace saclo::sac
