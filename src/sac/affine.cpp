#include "sac/affine.hpp"

#include <numeric>

#include "core/fmt.hpp"
#include "sac/specialize.hpp"

namespace saclo::sac::affine {

bool Lin::is_const() const {
  for (std::int64_t c : coeff) {
    if (c != 0) return false;
  }
  return true;
}

namespace {

Lin constant(std::size_t rank, std::int64_t v) {
  Lin l;
  l.coeff.assign(rank, 0);
  l.c0 = v;
  return l;
}

std::optional<Lin> add(const Lin& a, const Lin& b, std::int64_t sign) {
  Lin out = a;
  for (std::size_t i = 0; i < out.coeff.size(); ++i) out.coeff[i] += sign * b.coeff[i];
  out.c0 += sign * b.c0;
  return out;
}

std::optional<Lin> mul(const Lin& a, const Lin& b) {
  if (a.is_const()) {
    Lin out = b;
    for (auto& c : out.coeff) c *= a.c0;
    out.c0 *= a.c0;
    return out;
  }
  if (b.is_const()) return mul(b, a);
  return std::nullopt;
}

/// Truncated division by a positive constant; sound only when every
/// term is non-negative and every coefficient divides (see Lin docs).
std::optional<Lin> div(const Lin& a, const Lin& b) {
  if (!b.is_const() || b.c0 <= 0) return std::nullopt;
  const std::int64_t k = b.c0;
  if (a.c0 < 0) return std::nullopt;
  Lin out = a;
  for (auto& c : out.coeff) {
    if (c < 0 || c % k != 0) return std::nullopt;
    c /= k;
  }
  out.c0 /= k;
  return out;
}

std::optional<Lin> mod(const Lin& a, const Lin& b, std::size_t rank) {
  if (!b.is_const() || b.c0 <= 0) return std::nullopt;
  const std::int64_t k = b.c0;
  if (a.c0 < 0) return std::nullopt;
  for (std::int64_t c : a.coeff) {
    if (c < 0 || c % k != 0) return std::nullopt;
  }
  return constant(rank, a.c0 % k);
}

}  // namespace

Lin AffineEval::lattice_var(std::size_t d) const {
  Lin l = constant(lat_->rank(), lat_->dims[d].lb);
  l.coeff[d] = lat_->dims[d].step;
  return l;
}

void AffineEval::bind_block(const std::vector<StmtPtr>& body) {
  for (const StmtPtr& s : body) {
    if (s->kind != StmtKind::Assign || !s->value) {
      // Element assignments / loops invalidate the target.
      if (!s->target.empty()) {
        scalar_bindings_.erase(s->target);
        vec_bindings_.erase(s->target);
      }
      continue;
    }
    if (auto v = eval_vector(*s->value)) {
      if (v->size() == 1) scalar_bindings_[s->target] = (*v)[0];
      vec_bindings_[s->target] = std::move(*v);
    } else {
      scalar_bindings_.erase(s->target);
      vec_bindings_.erase(s->target);
    }
  }
}

std::optional<Lin> AffineEval::eval_scalar(const Expr& e) const {
  const std::size_t rank = lat_->rank();
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      return constant(rank, e.int_val);
    case ExprKind::Var: {
      for (std::size_t d = 0; d < lat_->scalar_names.size(); ++d) {
        if (lat_->scalar_names[d] == e.name) return lattice_var(d);
      }
      auto it = scalar_bindings_.find(e.name);
      if (it != scalar_bindings_.end()) return it->second;
      return std::nullopt;
    }
    case ExprKind::Select: {
      // iv[d] on the generator's vector variable or on a bound vector.
      auto vec = eval_vector(*e.args[0]);
      if (!vec) return std::nullopt;
      auto idx = literal_value(*e.args[1]);
      if (!idx || !idx->is_int()) return std::nullopt;
      const Index iv = idx->shape().rank() == 0 ? Index{idx->as_int()} : idx->as_index_vector();
      if (iv.size() != 1) return std::nullopt;
      if (iv[0] < 0 || iv[0] >= static_cast<std::int64_t>(vec->size())) return std::nullopt;
      return (*vec)[static_cast<std::size_t>(iv[0])];
    }
    case ExprKind::BinOp: {
      auto a = eval_scalar(*e.args[0]);
      auto b = eval_scalar(*e.args[1]);
      if (!a || !b) return std::nullopt;
      switch (e.bin_op) {
        case BinOpKind::Add: return add(*a, *b, 1);
        case BinOpKind::Sub: return add(*a, *b, -1);
        case BinOpKind::Mul: return mul(*a, *b);
        case BinOpKind::Div: return div(*a, *b);
        case BinOpKind::Mod: return mod(*a, *b, rank);
        default: return std::nullopt;
      }
    }
    case ExprKind::UnOp: {
      if (e.un_op != UnOpKind::Neg) return std::nullopt;
      auto a = eval_scalar(*e.args[0]);
      if (!a) return std::nullopt;
      return add(constant(rank, 0), *a, -1);
    }
    default:
      return std::nullopt;
  }
}

std::optional<std::vector<Lin>> AffineEval::eval_vector(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::Var: {
      if (!lat_->vector_name.empty() && e.name == lat_->vector_name) {
        std::vector<Lin> out;
        out.reserve(lat_->rank());
        for (std::size_t d = 0; d < lat_->rank(); ++d) out.push_back(lattice_var(d));
        return out;
      }
      auto it = vec_bindings_.find(e.name);
      if (it != vec_bindings_.end()) return it->second;
      if (auto s = eval_scalar(e)) return std::vector<Lin>{*s};
      return std::nullopt;
    }
    case ExprKind::ArrayLit: {
      std::vector<Lin> out;
      out.reserve(e.args.size());
      for (const ExprPtr& a : e.args) {
        auto s = eval_scalar(*a);
        if (!s) return std::nullopt;
        out.push_back(std::move(*s));
      }
      return out;
    }
    case ExprKind::BinOp: {
      if (e.bin_op == BinOpKind::Concat) {
        auto a = eval_vector(*e.args[0]);
        auto b = eval_vector(*e.args[1]);
        if (!a || !b) return std::nullopt;
        a->insert(a->end(), b->begin(), b->end());
        return a;
      }
      // Elementwise vector arithmetic (vector op vector / vector op
      // scalar), used by `off % shape` style index computations.
      auto a = eval_vector(*e.args[0]);
      auto b = eval_vector(*e.args[1]);
      if (!a || !b) {
        if (auto s = eval_scalar(e)) return std::vector<Lin>{*s};
        return std::nullopt;
      }
      const std::size_t n = std::max(a->size(), b->size());
      if (a->size() != n && a->size() != 1) return std::nullopt;
      if (b->size() != n && b->size() != 1) return std::nullopt;
      std::vector<Lin> out;
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const Lin& x = (*a)[a->size() == 1 ? 0 : i];
        const Lin& y = (*b)[b->size() == 1 ? 0 : i];
        std::optional<Lin> r;
        switch (e.bin_op) {
          case BinOpKind::Add: r = add(x, y, 1); break;
          case BinOpKind::Sub: r = add(x, y, -1); break;
          case BinOpKind::Mul: r = mul(x, y); break;
          case BinOpKind::Div: r = div(x, y); break;
          case BinOpKind::Mod: r = mod(x, y, lat_->rank()); break;
          default: return std::nullopt;
        }
        if (!r) return std::nullopt;
        out.push_back(std::move(*r));
      }
      return out;
    }
    case ExprKind::Call: {
      if (e.name == "CAT" && e.args.size() == 2) {
        auto a = eval_vector(*e.args[0]);
        auto b = eval_vector(*e.args[1]);
        if (!a || !b) return std::nullopt;
        a->insert(a->end(), b->begin(), b->end());
        return a;
      }
      if (e.name == "MV" && e.args.size() == 2) {
        auto m = literal_value(*e.args[0]);
        auto v = eval_vector(*e.args[1]);
        if (!m || !v || !m->is_int() || m->shape().rank() != 2) return std::nullopt;
        const IntArray& mat = m->ints();
        const std::int64_t rows = mat.shape()[0];
        const std::int64_t cols = mat.shape()[1];
        if (cols != static_cast<std::int64_t>(v->size())) return std::nullopt;
        std::vector<Lin> out;
        out.reserve(static_cast<std::size_t>(rows));
        for (std::int64_t r = 0; r < rows; ++r) {
          Lin acc = constant(lat_->rank(), 0);
          for (std::int64_t c = 0; c < cols; ++c) {
            auto term = mul(constant(lat_->rank(), mat[r * cols + c]),
                            (*v)[static_cast<std::size_t>(c)]);
            if (!term) return std::nullopt;
            acc = *add(acc, *term, 1);
          }
          out.push_back(std::move(acc));
        }
        return out;
      }
      return std::nullopt;
    }
    case ExprKind::Select: {
      if (auto s = eval_scalar(e)) return std::vector<Lin>{*s};
      return std::nullopt;
    }
    default: {
      if (auto s = eval_scalar(e)) return std::vector<Lin>{*s};
      return std::nullopt;
    }
  }
}

std::pair<std::int64_t, std::int64_t> AffineEval::range(const Lin& lin) const {
  std::int64_t lo = lin.c0;
  std::int64_t hi = lin.c0;
  for (std::size_t d = 0; d < lin.coeff.size(); ++d) {
    const std::int64_t tmax = std::max<std::int64_t>(lat_->dims[d].extent - 1, 0);
    const std::int64_t v = lin.coeff[d] * tmax;
    if (v >= 0) {
      hi += v;
    } else {
      lo += v;
    }
  }
  return {lo, hi};
}

ExprPtr lin_to_expr(const Lin& lin, const Lattice& lattice) {
  ExprPtr acc;
  auto iv_expr = [&](std::size_t d) -> ExprPtr {
    if (!lattice.vector_name.empty()) {
      return make_select(make_var(lattice.vector_name),
                         make_index_lit({static_cast<std::int64_t>(d)}));
    }
    return make_var(lattice.scalar_names[d]);
  };
  for (std::size_t d = 0; d < lin.coeff.size(); ++d) {
    if (lin.coeff[d] == 0) continue;
    // t_d == (iv_d - lb_d) / step_d.
    ExprPtr t = iv_expr(d);
    const auto& dim = lattice.dims[d];
    if (dim.lb != 0) t = make_bin(BinOpKind::Sub, std::move(t), make_int(dim.lb));
    if (dim.step != 1) t = make_bin(BinOpKind::Div, std::move(t), make_int(dim.step));
    if (lin.coeff[d] != 1) t = make_bin(BinOpKind::Mul, make_int(lin.coeff[d]), std::move(t));
    acc = acc ? make_bin(BinOpKind::Add, std::move(acc), std::move(t)) : std::move(t);
  }
  if (!acc) return make_int(lin.c0);
  if (lin.c0 != 0) acc = make_bin(BinOpKind::Add, std::move(acc), make_int(lin.c0));
  return acc;
}

// --- regions ---------------------------------------------------------------------

std::int64_t DimRegion::count() const {
  if (hi <= lo) return 0;
  const std::int64_t f = first();
  if (f >= hi) return 0;
  return (hi - 1 - f) / m + 1;
}

std::int64_t DimRegion::first() const {
  // Smallest t >= lo with t % m == r.
  const std::int64_t rr = ((r % m) + m) % m;
  std::int64_t t = lo + ((rr - lo) % m + m) % m;
  return t;
}

std::int64_t DimRegion::last() const { return first() + (count() - 1) * m; }

std::optional<DimRegion> DimRegion::intersect(const DimRegion& other) const {
  DimRegion out;
  out.lo = std::max(lo, other.lo);
  out.hi = std::min(hi, other.hi);
  // Solve t == r (mod m), t == other.r (mod other.m) by CRT (scan — the
  // moduli in practice are tiny steps).
  const std::int64_t g = std::gcd(m, other.m);
  if (((r - other.r) % g + g) % g != 0) return std::nullopt;
  const std::int64_t M = m / g * other.m;
  if (M > 1'000'000) return std::nullopt;  // give up on absurd moduli
  std::int64_t sol = -1;
  for (std::int64_t t = ((r % m) + m) % m; t < M; t += m) {
    if (((t - other.r) % other.m + other.m) % other.m == 0) {
      sol = t;
      break;
    }
  }
  if (sol < 0) return std::nullopt;
  out.r = sol;
  out.m = M;
  if (out.count() == 0) return std::nullopt;
  return out;
}

std::vector<DimRegion> DimRegion::subtract(const DimRegion& other) const {
  std::vector<DimRegion> out;
  auto inter = intersect(other);
  if (!inter) {
    if (count() > 0) out.push_back(*this);
    return out;
  }
  const DimRegion& cut = *inter;
  // Left interval part.
  {
    DimRegion left = *this;
    left.hi = std::min(hi, cut.lo);
    if (left.count() > 0) out.push_back(left);
  }
  // Middle: same interval as the cut, residue classes of *this that are
  // not the cut's class. cut.m is a multiple of m.
  for (std::int64_t cls = ((r % m) + m) % m; cls < cut.m; cls += m) {
    if (cls == ((cut.r % cut.m) + cut.m) % cut.m) continue;
    DimRegion mid;
    mid.lo = std::max(lo, cut.lo);
    mid.hi = std::min(hi, cut.hi);
    mid.r = cls;
    mid.m = cut.m;
    if (mid.count() > 0) out.push_back(mid);
  }
  // Right interval part.
  {
    DimRegion right = *this;
    right.lo = std::max(lo, cut.hi);
    if (right.count() > 0) out.push_back(right);
  }
  return out;
}

std::int64_t box_count(const Box& box) {
  std::int64_t n = 1;
  for (const DimRegion& d : box) n *= d.count();
  return n;
}

std::optional<Box> box_intersect(const Box& a, const Box& b) {
  Box out;
  out.reserve(a.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    auto i = a[d].intersect(b[d]);
    if (!i) return std::nullopt;
    out.push_back(*i);
  }
  return out;
}

std::vector<Box> box_subtract(const Box& a, const Box& b) {
  std::vector<Box> out;
  Box current = a;
  for (std::size_t d = 0; d < a.size(); ++d) {
    for (const DimRegion& piece : current[d].subtract(b[d])) {
      Box part = current;
      part[d] = piece;
      if (box_count(part) > 0) out.push_back(std::move(part));
    }
    auto inter = current[d].intersect(b[d]);
    if (!inter) return out;  // fully carved away
    current[d] = *inter;
  }
  // `current` is now inside b and is intentionally dropped.
  return out;
}

}  // namespace saclo::sac::affine
