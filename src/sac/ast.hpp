#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/shape.hpp"

namespace saclo::sac {

/// Element types of mini-SaC arrays. Bools are represented as ints at
/// runtime (SaC-style), but the checker keeps them distinct.
enum class ElemType { Int, Float, Bool };

std::string to_string(ElemType t);

/// A source-level type annotation: `int`, `int[*]`, `int[.]`,
/// `int[.,.]`, `int[1080,1920]`, `float[3,.]`, ...
struct TypeSpec {
  enum class Dims {
    Scalar,    ///< `int`
    AnyRank,   ///< `int[*]` — rank unknown
    Described  ///< `int[d0,...,dn]` where each di is a constant or `.`
  };

  ElemType elem = ElemType::Int;
  Dims kind = Dims::Scalar;
  /// For Described: one entry per dimension; -1 encodes `.` (extent
  /// unknown, rank known).
  std::vector<std::int64_t> dims;

  std::string to_string() const;
};

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinOpKind { Add, Sub, Mul, Div, Mod, Concat, Lt, Le, Gt, Ge, Eq, Ne, And, Or };
enum class UnOpKind { Neg, Not };

std::string to_string(BinOpKind op);

/// One `(lb <= iv < ub step s width w) { body } : value;` part of a
/// with-loop.
struct Generator {
  /// Bound expressions; nullptr encodes the `.` shorthand (derived
  /// from the with-loop operation during lowering).
  ExprPtr lower;
  bool lower_inclusive = true;
  ExprPtr upper;
  bool upper_inclusive = false;

  /// The index variable: either one vector variable (`iv`) or a
  /// destructuring pattern (`[i,j]`).
  std::vector<std::string> vars;
  bool vector_var = true;

  ExprPtr step;   ///< optional `step` filter
  ExprPtr width;  ///< optional `width` filter

  std::vector<StmtPtr> body;  ///< local bindings evaluated per index
  ExprPtr value;              ///< the cell value
};

enum class WithOpKind { Genarray, Modarray, Fold };

/// The operation part of a with-loop: `genarray(shape [, default])`,
/// `modarray(target)`, or `fold(op, neutral)` where op is one of the
/// reduction builtins (+, *, min, max).
struct WithOp {
  WithOpKind kind = WithOpKind::Genarray;
  ExprPtr shape_or_target;  ///< genarray shape / modarray target / fold neutral
  ExprPtr default_value;    ///< genarray only; nullptr == element-type zero
  std::string fold_op;      ///< fold only: "+", "*", "min", "max"
};

enum class ExprKind {
  IntLit,
  FloatLit,
  BoolLit,
  Var,
  ArrayLit,  ///< [e0, e1, ...]
  BinOp,
  UnOp,
  Call,
  Select,  ///< a[e] — e is an index vector (possibly shorter than rank)
  With
};

/// Expression node. A single struct with a kind tag keeps the pass
/// implementations compact (no visitor boilerplate); only the fields
/// relevant to `kind` are populated.
struct Expr {
  ExprKind kind = ExprKind::IntLit;
  int line = 0;

  std::int64_t int_val = 0;  ///< IntLit / BoolLit (0 or 1)
  double float_val = 0.0;    ///< FloatLit
  std::string name;          ///< Var / Call

  BinOpKind bin_op = BinOpKind::Add;
  UnOpKind un_op = UnOpKind::Neg;

  /// Children: ArrayLit elements; Call arguments; BinOp {lhs,rhs};
  /// UnOp {operand}; Select {array, index}.
  std::vector<ExprPtr> args;

  /// With-loop payload (kind == With).
  std::vector<Generator> generators;
  WithOp op;

  ExprPtr clone() const;
};

enum class StmtKind { Assign, ElemAssign, For, If, Return };

/// Statement node (same single-struct style as Expr).
struct Stmt {
  StmtKind kind = StmtKind::Assign;
  int line = 0;

  /// Assign: `[type] target = value;`
  /// ElemAssign: `target[i0][i1]... = value;` (indices are the
  ///   successive bracket expressions)
  /// For: `for (target = init; cond; target += step_amount) body`
  std::string target;
  std::optional<TypeSpec> decl_type;
  std::vector<ExprPtr> indices;
  ExprPtr value;  ///< Assign/ElemAssign rhs; If condition; Return value

  ExprPtr for_init;
  ExprPtr for_cond;
  ExprPtr for_step;  ///< increment amount (i++ parses as 1)

  std::vector<StmtPtr> body;       ///< For body / If then-branch
  std::vector<StmtPtr> else_body;  ///< If else-branch

  StmtPtr clone() const;
};

std::vector<StmtPtr> clone_block(const std::vector<StmtPtr>& block);
Generator clone_generator(const Generator& g);

/// A function definition.
struct FunDef {
  std::string name;
  TypeSpec return_type;
  std::vector<std::pair<TypeSpec, std::string>> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

/// A parsed module (compilation unit).
struct Module {
  std::vector<FunDef> functions;

  const FunDef* find(const std::string& name) const;
};

/// Convenience constructors used by the passes.
ExprPtr make_int(std::int64_t v);
ExprPtr make_var(std::string name);
ExprPtr make_array_lit(std::vector<ExprPtr> elems);
ExprPtr make_index_lit(const Index& idx);
ExprPtr make_bin(BinOpKind op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_select(ExprPtr array, ExprPtr index);

}  // namespace saclo::sac
