#include "sac/specialize.hpp"

#include <map>
#include <set>

#include "core/fmt.hpp"
#include "sac/builtins.hpp"
#include "sac/interp.hpp"

namespace saclo::sac {

ExprPtr literal_expr(const Value& v) {
  const Shape& s = v.shape();
  if (s.rank() == 0) {
    if (v.is_int()) return make_int(v.as_int());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::FloatLit;
    e->float_val = v.as_double();
    return e;
  }
  std::vector<ExprPtr> rows;
  const std::int64_t n = s[0];
  rows.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Select row i (as a Value) and recurse.
    const Shape cell = s.drop(1);
    const std::int64_t cn = cell.elements();
    if (v.is_int()) {
      IntArray row(cell);
      for (std::int64_t j = 0; j < cn; ++j) row[j] = v.ints()[i * cn + j];
      rows.push_back(literal_expr(Value(std::move(row))));
    } else {
      FloatArray row(cell);
      for (std::int64_t j = 0; j < cn; ++j) row[j] = v.floats()[i * cn + j];
      rows.push_back(literal_expr(Value(std::move(row))));
    }
  }
  return make_array_lit(std::move(rows));
}

std::optional<Value> literal_value(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      return Value::from_int(e.int_val);
    case ExprKind::FloatLit:
      return Value::from_double(e.float_val);
    case ExprKind::ArrayLit: {
      std::vector<Value> elems;
      elems.reserve(e.args.size());
      for (const ExprPtr& a : e.args) {
        auto v = literal_value(*a);
        if (!v) return std::nullopt;
        elems.push_back(std::move(*v));
      }
      if (elems.empty()) return Value(IntArray(Shape{0}));
      const Shape cell = elems[0].shape();
      const std::int64_t cn = cell.elements();
      const Shape full = Shape{static_cast<std::int64_t>(elems.size())}.concat(cell);
      if (elems[0].is_int()) {
        IntArray out(full);
        for (std::size_t i = 0; i < elems.size(); ++i) {
          if (!elems[i].is_int() || elems[i].shape() != cell) return std::nullopt;
          for (std::int64_t j = 0; j < cn; ++j) {
            out[static_cast<std::int64_t>(i) * cn + j] = elems[i].ints()[j];
          }
        }
        return Value(std::move(out));
      }
      FloatArray out(full);
      for (std::size_t i = 0; i < elems.size(); ++i) {
        if (!elems[i].is_float() || elems[i].shape() != cell) return std::nullopt;
        for (std::int64_t j = 0; j < cn; ++j) {
          out[static_cast<std::int64_t>(i) * cn + j] = elems[i].floats()[j];
        }
      }
      return Value(std::move(out));
    }
    default:
      return std::nullopt;
  }
}

namespace {

constexpr std::int64_t kMaxInlineConstElems = 256;

struct AVal {
  ElemType elem = ElemType::Int;
  std::optional<Shape> shape;
};

class Specializer {
 public:
  explicit Specializer(const Module& mod) : mod_(&mod) {}

  FunDef run(const std::string& fn, const std::vector<ArgSpec>& args) {
    const FunDef* def = mod_->find(fn);
    if (def == nullptr) throw SpecializeError(cat("unknown function '", fn, "'"));
    if (def->params.size() != args.size()) {
      throw SpecializeError(cat("function '", fn, "' expects ", def->params.size(),
                                " arguments, got ", args.size()));
    }
    FunDef out;
    out.name = def->name;
    out.return_type = def->return_type;
    out.params = def->params;

    push_scope(/*barrier=*/true);
    std::map<std::string, std::string> rename;  // identity at entry level
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& name = def->params[i].second;
      rename[name] = name;
      define(name, AVal{args[i].elem, args[i].shape});
      if (args[i].constant && args[i].constant->shape().elements() <= kMaxInlineConstElems) {
        constants_[name] = *args[i].constant;
      }
    }
    frames_.push_back(Frame{&rename, def->name});
    spec_block(def->body, out.body, /*inlined=*/false, nullptr);
    frames_.pop_back();
    pop_scope();
    return out;
  }

 private:
  struct Frame {
    std::map<std::string, std::string>* rename;
    std::string fn_name;
  };

  // --- scope helpers ------------------------------------------------------

  struct Scope {
    std::map<std::string, AVal> vars;
    bool barrier = false;
  };

  void push_scope(bool barrier) { scopes_.push_back(Scope{{}, barrier}); }
  void pop_scope() { scopes_.pop_back(); }

  AVal* find(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->vars.find(name);
      if (f != it->vars.end()) return &f->second;
    }
    return nullptr;
  }

  void define(const std::string& name, AVal v) {
    scopes_.back().vars.insert_or_assign(name, std::move(v));
  }

  /// Binds `name`: updates an existing binding above the innermost
  /// barrier, else defines locally (with-loop bodies and function
  /// frames do not leak assignments outward).
  void bind(const std::string& name, AVal v) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->vars.find(name);
      if (f != it->vars.end()) {
        f->second = std::move(v);
        return;
      }
      if (it->barrier) break;
    }
    define(name, std::move(v));
  }

  std::string fresh(const std::string& base) { return cat(base, "_i", counter_++); }

  std::string resolve(const std::string& src) {
    auto& rename = *frames_.back().rename;
    auto it = rename.find(src);
    if (it != rename.end()) return it->second;
    // Unrenamed name in an inlined frame: a local not yet defined —
    // allocate a fresh target name on first definition (see
    // define_target); for reads this is an error caught by `find`.
    return src;
  }

  std::string define_target(const std::string& src) {
    auto& rename = *frames_.back().rename;
    auto it = rename.find(src);
    if (it != rename.end()) return it->second;
    const bool entry = frames_.size() == 1;
    std::string out = entry ? src : fresh(src);
    rename.emplace(src, out);
    return out;
  }

  // --- constant handling ----------------------------------------------------

  std::optional<Value> const_of(const Expr& e) {
    if (e.kind == ExprKind::Var) {
      auto it = constants_.find(e.name);
      if (it != constants_.end()) return it->second;
      return std::nullopt;
    }
    return literal_value(e);
  }

  ExprPtr constant_to_expr(Value v, AVal* info) {
    if (info != nullptr) {
      info->elem = v.is_int() ? ElemType::Int : ElemType::Float;
      info->shape = v.shape();
    }
    return literal_expr(v);
  }

  // --- expressions -------------------------------------------------------------

  ExprPtr spec_expr(const Expr& e, std::vector<StmtPtr>& out, AVal* info) {
    AVal dummy;
    AVal& inf = info != nullptr ? *info : dummy;
    inf = AVal{};
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
        inf = AVal{ElemType::Int, Shape{}};
        return e.clone();
      case ExprKind::FloatLit:
        inf = AVal{ElemType::Float, Shape{}};
        return e.clone();
      case ExprKind::Var: {
        const std::string name = resolve(e.name);
        AVal* v = find(name);
        if (v == nullptr) {
          throw SpecializeError(cat("unknown variable '", e.name, "' at line ", e.line,
                                    " while specialising ", frames_.back().fn_name));
        }
        inf = *v;
        auto c = constants_.find(name);
        if (c != constants_.end()) return constant_to_expr(c->second, &inf);
        return make_var(name);
      }
      case ExprKind::ArrayLit: {
        std::vector<ExprPtr> elems;
        elems.reserve(e.args.size());
        std::optional<Shape> cell;
        ElemType elem = ElemType::Int;
        bool shapes_known = true;
        for (const ExprPtr& a : e.args) {
          AVal ai;
          elems.push_back(spec_expr(*a, out, &ai));
          elem = ai.elem;
          if (!ai.shape) {
            shapes_known = false;
          } else if (!cell) {
            cell = ai.shape;
          }
        }
        inf.elem = elem;
        if (shapes_known && cell) {
          inf.shape = Shape{static_cast<std::int64_t>(elems.size())}.concat(*cell);
        } else if (e.args.empty()) {
          inf.shape = Shape{0};
        }
        return make_array_lit(std::move(elems));
      }
      case ExprKind::BinOp: {
        AVal ai, bi;
        ExprPtr a = spec_expr(*e.args[0], out, &ai);
        ExprPtr b = spec_expr(*e.args[1], out, &bi);
        ExprPtr folded = try_fold_binop(e, a, b, &inf);
        if (folded) return folded;
        inf.elem = e.bin_op == BinOpKind::Concat ? ai.elem : ai.elem;
        switch (e.bin_op) {
          case BinOpKind::Concat:
            if (ai.shape && bi.shape) {
              auto len = [](const Shape& s) { return s.rank() == 0 ? 1 : s.elements(); };
              inf.shape = Shape{len(*ai.shape) + len(*bi.shape)};
            }
            break;
          default:
            if (ai.shape && ai.shape->rank() == 0) {
              inf.shape = bi.shape;
            } else if (bi.shape && bi.shape->rank() == 0) {
              inf.shape = ai.shape;
            } else if (ai.shape) {
              inf.shape = ai.shape;
            } else {
              inf.shape = bi.shape;
            }
            break;
        }
        ExprPtr r = make_bin(e.bin_op, std::move(a), std::move(b));
        r->line = e.line;
        return r;
      }
      case ExprKind::UnOp: {
        AVal ai;
        ExprPtr a = spec_expr(*e.args[0], out, &ai);
        if (auto v = literal_value(*a)) {
          auto r = e.clone();
          r->args[0] = std::move(a);
          Interp interp(*mod_);
          return constant_to_expr(interp.eval_closed(*r), &inf);
        }
        inf = ai;
        auto r = std::make_unique<Expr>();
        r->kind = ExprKind::UnOp;
        r->un_op = e.un_op;
        r->line = e.line;
        r->args.push_back(std::move(a));
        return r;
      }
      case ExprKind::Call:
        return spec_call(e, out, inf);
      case ExprKind::Select: {
        AVal ai, ii;
        ExprPtr arr = spec_expr(*e.args[0], out, &ai);
        ExprPtr idx = spec_expr(*e.args[1], out, &ii);
        // Fold constant selections.
        auto av = literal_value(*arr);
        auto iv = literal_value(*idx);
        if (av && iv) {
          auto r = make_select(std::move(arr), std::move(idx));
          Interp interp(*mod_);
          return constant_to_expr(interp.eval_closed(*r), &inf);
        }
        inf.elem = ai.elem;
        std::optional<std::size_t> idx_len;
        if (iv) {
          idx_len = iv->shape().rank() == 0 ? 1 : static_cast<std::size_t>(iv->shape().elements());
        } else if (ii.shape) {
          idx_len = ii.shape->rank() == 0
                        ? 1
                        : static_cast<std::size_t>(ii.shape->elements());
        }
        if (ai.shape && idx_len && *idx_len <= ai.shape->rank()) {
          inf.shape = ai.shape->drop(*idx_len);
        }
        ExprPtr r = make_select(std::move(arr), std::move(idx));
        r->line = e.line;
        return r;
      }
      case ExprKind::With:
        return spec_with(e, out, inf);
    }
    throw SpecializeError("unreachable expression kind");
  }

  ExprPtr try_fold_binop(const Expr& e, ExprPtr& a, ExprPtr& b, AVal* inf) {
    auto av = literal_value(*a);
    auto bv = literal_value(*b);
    if (!av || !bv) return nullptr;
    auto r = std::make_unique<Expr>();
    r->kind = ExprKind::BinOp;
    r->bin_op = e.bin_op;
    r->args.push_back(a->clone());
    r->args.push_back(b->clone());
    Interp interp(*mod_);
    return constant_to_expr(interp.eval_closed(*r), inf);
  }

  ExprPtr spec_call(const Expr& e, std::vector<StmtPtr>& out, AVal& inf) {
    std::vector<ExprPtr> args;
    std::vector<AVal> infos(e.args.size());
    args.reserve(e.args.size());
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      args.push_back(spec_expr(*e.args[i], out, &infos[i]));
    }
    if (is_builtin(e.name)) {
      // shape()/dim() fold from static shape knowledge even when the
      // argument itself is not constant — the key enabler for concrete
      // generator bounds.
      if (e.name == "shape" && infos[0].shape) {
        IntArray s(Shape{static_cast<std::int64_t>(infos[0].shape->rank())});
        for (std::size_t d = 0; d < infos[0].shape->rank(); ++d) {
          s[static_cast<std::int64_t>(d)] = (*infos[0].shape)[d];
        }
        return constant_to_expr(Value(std::move(s)), &inf);
      }
      if (e.name == "dim" && infos[0].shape) {
        return constant_to_expr(Value::from_int(static_cast<std::int64_t>(infos[0].shape->rank())),
                                &inf);
      }
      bool all_const = true;
      std::vector<Value> vals;
      for (const ExprPtr& a : args) {
        auto v = literal_value(*a);
        if (!v) {
          all_const = false;
          break;
        }
        vals.push_back(std::move(*v));
      }
      if (all_const) {
        return constant_to_expr(eval_builtin(e.name, vals), &inf);
      }
      auto r = std::make_unique<Expr>();
      r->kind = ExprKind::Call;
      r->name = e.name;
      r->line = e.line;
      r->args = std::move(args);
      inf.elem = e.name == "tod" ? ElemType::Float : ElemType::Int;
      if (e.name == "MV" && infos[0].shape && infos[0].shape->rank() == 2) {
        inf.shape = Shape{(*infos[0].shape)[0]};
      }
      if (e.name == "CAT" && infos[0].shape && infos[1].shape) {
        auto len = [](const Shape& s) { return s.rank() == 0 ? 1 : s.elements(); };
        inf.shape = Shape{len(*infos[0].shape) + len(*infos[1].shape)};
      }
      return r;
    }
    return inline_call(e, std::move(args), infos, out, inf);
  }

  ExprPtr inline_call(const Expr& e, std::vector<ExprPtr> args, const std::vector<AVal>& infos,
                      std::vector<StmtPtr>& out, AVal& inf) {
    const FunDef* callee = mod_->find(e.name);
    if (callee == nullptr) {
      throw SpecializeError(cat("call to unknown function '", e.name, "' at line ", e.line));
    }
    for (const Frame& f : frames_) {
      if (f.fn_name == e.name) {
        throw SpecializeError(cat("cannot specialise recursive function '", e.name, "'"));
      }
    }
    if (callee->params.size() != args.size()) {
      throw SpecializeError(cat("function '", e.name, "' expects ", callee->params.size(),
                                " arguments, got ", args.size(), " at line ", e.line));
    }
    std::map<std::string, std::string> rename;
    push_scope(/*barrier=*/true);
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& pname = callee->params[i].second;
      if (args[i]->kind == ExprKind::Var) {
        rename[pname] = args[i]->name;
        // Parameter aliases an existing binding; AVal already in env
        // but may be hidden behind the barrier — re-define locally.
        define(args[i]->name, infos[i]);
        if (auto c = constants_.find(args[i]->name); c != constants_.end()) {
          // keep existing constant mapping
        }
      } else if (auto v = literal_value(*args[i]);
                 v && v->shape().elements() <= kMaxInlineConstElems) {
        const std::string n = fresh(pname);
        rename[pname] = n;
        define(n, infos[i]);
        constants_[n] = *v;
      } else {
        const std::string n = fresh(pname);
        rename[pname] = n;
        define(n, infos[i]);
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Assign;
        s->target = n;
        s->value = std::move(args[i]);
        out.push_back(std::move(s));
      }
    }
    frames_.push_back(Frame{&rename, callee->name});
    ExprPtr result;
    spec_block(callee->body, out, /*inlined=*/true, &result);
    frames_.pop_back();
    if (!result) {
      throw SpecializeError(cat("function '", e.name,
                                "' has no top-level return; cannot inline at line ", e.line));
    }
    AVal ri;
    // Re-derive info for the inlined result expression.
    std::vector<StmtPtr> scratch;
    ExprPtr rechecked = spec_expr(*result, scratch, &ri);
    for (auto& s : scratch) out.push_back(std::move(s));
    pop_scope();
    inf = ri;
    return rechecked;
  }

  ExprPtr spec_with(const Expr& e, std::vector<StmtPtr>& out, AVal& inf) {
    auto r = std::make_unique<Expr>();
    r->kind = ExprKind::With;
    r->line = e.line;
    r->op.kind = e.op.kind;

    AVal op_info;
    r->op.shape_or_target = spec_expr(*e.op.shape_or_target, out, &op_info);

    r->op.fold_op = e.op.fold_op;
    std::optional<Shape> frame;
    std::optional<Shape> cell;
    ElemType elem = op_info.elem;
    if (e.op.kind == WithOpKind::Fold) {
      // fold(op, neutral): the result is a scalar of the neutral's
      // element type. Generators carry their own explicit bounds; the
      // frame (for index-variable rank) comes from the first
      // generator's bound when literal.
      cell = Shape{};
      elem = op_info.elem;
      if (!e.generators.empty()) {
        if (!e.generators[0].vector_var) {
          frame = std::nullopt;  // rank comes from the pattern below
        }
      }
    } else if (e.op.kind == WithOpKind::Genarray) {
      if (auto shp = literal_value(*r->op.shape_or_target)) {
        frame = Shape(shp->as_index_vector());
      }
      if (e.op.default_value) {
        AVal di;
        r->op.default_value = spec_expr(*e.op.default_value, out, &di);
        elem = di.elem;
        if (di.shape) cell = di.shape;
      }
    } else {
      elem = op_info.elem;
      if (op_info.shape) {
        std::size_t gen_rank = op_info.shape->rank();
        if (!e.generators.empty() && !e.generators[0].vector_var) {
          gen_rank = e.generators[0].vars.size();
        }
        frame = op_info.shape->take(gen_rank);
        cell = op_info.shape->drop(gen_rank);
      }
    }

    for (const Generator& g : e.generators) {
      Generator ng;
      ng.vars = g.vars;
      ng.vector_var = g.vector_var;
      // Destructured patterns fix the generator rank even when the
      // frame is unknown; fold generators carry literal bounds.
      std::optional<std::size_t> rank;
      if (frame) {
        rank = frame->rank();
      } else if (!g.vector_var) {
        rank = g.vars.size();
      } else if (g.upper) {
        std::vector<StmtPtr> scratch;
        AVal bi;
        ExprPtr probe = spec_expr(*g.upper, scratch, &bi);
        if (auto v = literal_value(*probe); v && v->is_int() && v->shape().rank() <= 1) {
          rank = v->shape().rank() == 0 ? 1 : static_cast<std::size_t>(v->shape().elements());
        }
      }

      auto spec_bound = [&](const ExprPtr& bound) -> ExprPtr {
        if (!bound) return nullptr;
        AVal bi;
        return spec_expr(*bound, out, &bi);
      };
      ng.lower = spec_bound(g.lower);
      ng.lower_inclusive = g.lower_inclusive;
      ng.upper = spec_bound(g.upper);
      ng.upper_inclusive = g.upper_inclusive;
      ng.step = spec_bound(g.step);
      ng.width = spec_bound(g.width);

      // Resolve `.` bounds and normalise to [lb, ub) when concrete.
      if (rank) {
        if (!ng.lower) {
          ng.lower = make_index_lit(Index(*rank, 0));
          ng.lower_inclusive = true;
        }
        if (!ng.upper && frame) {
          ng.upper = make_index_lit(frame->dims());
          ng.upper_inclusive = false;
        }
        auto normalize = [&](ExprPtr& bound, bool& inclusive, bool is_lower, bool want_incl) {
          if (!bound) return;
          auto v = literal_value(*bound);
          if (!v) return;
          Index vec = v->shape().rank() == 0 ? Index(*rank, v->as_int()) : v->as_index_vector();
          if (vec.size() != *rank) {
            throw SpecializeError(cat("generator bound ", bracketed(vec), " has rank ",
                                      vec.size(), ", expected ", *rank, " at line ", e.line));
          }
          if (inclusive != want_incl) {
            const std::int64_t delta = is_lower == want_incl ? -1 : 1;
            // lower: exclusive->inclusive adds 1; upper: inclusive->exclusive adds 1
            for (auto& x : vec) x += (is_lower ? (want_incl ? 1 : -1) : (want_incl ? -1 : 1));
            (void)delta;
            inclusive = want_incl;
          }
          bound = make_index_lit(vec);
        };
        normalize(ng.lower, ng.lower_inclusive, /*is_lower=*/true, /*want_incl=*/true);
        normalize(ng.upper, ng.upper_inclusive, /*is_lower=*/false, /*want_incl=*/false);
      }

      // Specialise the generator body and value in a fresh barrier
      // scope with the index variables bound.
      push_scope(/*barrier=*/true);
      if (g.vector_var) {
        AVal iv;
        iv.elem = ElemType::Int;
        if (rank) iv.shape = Shape{static_cast<std::int64_t>(*rank)};
        const std::string n = define_target(g.vars[0]);
        ng.vars[0] = n;
        define(n, iv);
      } else {
        for (std::size_t i = 0; i < g.vars.size(); ++i) {
          const std::string n = define_target(g.vars[i]);
          ng.vars[i] = n;
          define(n, AVal{ElemType::Int, Shape{}});
        }
      }
      spec_block(g.body, ng.body, /*inlined=*/false, nullptr);
      AVal vi;
      ng.value = spec_expr(*g.value, ng.body, &vi);
      pop_scope();
      if (!cell && vi.shape) {
        cell = vi.shape;
        if (e.op.kind == WithOpKind::Genarray && !e.op.default_value) elem = vi.elem;
      }
      r->generators.push_back(std::move(ng));
    }

    inf.elem = elem;
    if (e.op.kind == WithOpKind::Fold) {
      inf.shape = Shape{};
    } else if (frame && cell) {
      inf.shape = frame->concat(*cell);
    }
    return r;
  }

  // --- statements ------------------------------------------------------------

  void collect_assigned(const std::vector<StmtPtr>& block, std::set<std::string>& names) {
    for (const StmtPtr& s : block) {
      if (s->kind == StmtKind::Assign || s->kind == StmtKind::ElemAssign) {
        names.insert(s->target);
      }
      if (s->kind == StmtKind::For) names.insert(s->target);
      collect_assigned(s->body, names);
      collect_assigned(s->else_body, names);
    }
  }

  void spec_block(const std::vector<StmtPtr>& block, std::vector<StmtPtr>& out, bool inlined,
                  ExprPtr* inline_result) {
    for (const StmtPtr& s : block) {
      if (s->kind == StmtKind::Return) {
        AVal ri;
        ExprPtr v = spec_expr(*s->value, out, &ri);
        if (inlined) {
          if (inline_result != nullptr) *inline_result = std::move(v);
          return;
        }
        auto ns = std::make_unique<Stmt>();
        ns->kind = StmtKind::Return;
        ns->line = s->line;
        ns->value = std::move(v);
        out.push_back(std::move(ns));
        return;
      }
      spec_stmt(*s, out);
    }
  }

  void spec_stmt(const Stmt& s, std::vector<StmtPtr>& out) {
    switch (s.kind) {
      case StmtKind::Assign: {
        auto ns = std::make_unique<Stmt>();
        ns->kind = StmtKind::Assign;
        ns->line = s.line;
        AVal vi;
        if (s.value) {
          ns->value = spec_expr(*s.value, out, &vi);
        } else if (s.decl_type && s.decl_type->kind == TypeSpec::Dims::Described) {
          Index dims;
          for (std::int64_t d : s.decl_type->dims) {
            if (d < 0) {
              throw SpecializeError(cat("declaration of '", s.target,
                                        "' needs concrete extents at line ", s.line));
            }
            dims.push_back(d);
          }
          vi = AVal{s.decl_type->elem, Shape(dims)};
          ns->decl_type = s.decl_type;
        } else {
          throw SpecializeError(cat("declaration of '", s.target,
                                    "' without initialiser or shape at line ", s.line));
        }
        const std::string t = define_target(s.target);
        ns->target = t;
        bind(t, vi);
        if (ns->value) {
          if (auto v = literal_value(*ns->value);
              v && v->shape().elements() <= kMaxInlineConstElems) {
            constants_[t] = *v;
          } else {
            constants_.erase(t);
          }
        } else {
          constants_.erase(t);
        }
        out.push_back(std::move(ns));
        return;
      }
      case StmtKind::ElemAssign: {
        const std::string t = resolve(s.target);
        if (find(t) == nullptr) {
          throw SpecializeError(cat("element assignment to unknown '", s.target, "' at line ",
                                    s.line));
        }
        constants_.erase(t);
        auto ns = std::make_unique<Stmt>();
        ns->kind = StmtKind::ElemAssign;
        ns->line = s.line;
        ns->target = t;
        for (const ExprPtr& i : s.indices) {
          AVal ii;
          ns->indices.push_back(spec_expr(*i, out, &ii));
        }
        AVal vi;
        ns->value = spec_expr(*s.value, out, &vi);
        out.push_back(std::move(ns));
        return;
      }
      case StmtKind::For: {
        auto ns = std::make_unique<Stmt>();
        ns->kind = StmtKind::For;
        ns->line = s.line;
        AVal ii;
        ns->for_init = spec_expr(*s.for_init, out, &ii);
        const std::string lv = define_target(s.target);
        ns->target = lv;
        bind(lv, AVal{ElemType::Int, Shape{}});
        constants_.erase(lv);
        // Everything assigned in the body loses constness before we
        // specialise condition/step/body (they see the loop-carried
        // state).
        std::set<std::string> assigned;
        collect_assigned(s.body, assigned);
        for (const std::string& a : assigned) {
          constants_.erase(resolve(a));
        }
        AVal ci, si;
        ns->for_cond = spec_expr(*s.for_cond, out, &ci);
        ns->for_step = spec_expr(*s.for_step, out, &si);
        spec_block(s.body, ns->body, false, nullptr);
        out.push_back(std::move(ns));
        return;
      }
      case StmtKind::If: {
        AVal ci;
        ExprPtr cond = spec_expr(*s.value, out, &ci);
        if (auto v = literal_value(*cond)) {
          const auto& branch = v->as_bool() ? s.body : s.else_body;
          spec_block(branch, out, false, nullptr);
          return;
        }
        std::set<std::string> assigned;
        collect_assigned(s.body, assigned);
        collect_assigned(s.else_body, assigned);
        for (const std::string& a : assigned) constants_.erase(resolve(a));
        auto ns = std::make_unique<Stmt>();
        ns->kind = StmtKind::If;
        ns->line = s.line;
        ns->value = std::move(cond);
        spec_block(s.body, ns->body, false, nullptr);
        spec_block(s.else_body, ns->else_body, false, nullptr);
        out.push_back(std::move(ns));
        return;
      }
      case StmtKind::Return:
        throw SpecializeError("return handled in spec_block");
    }
  }

  const Module* mod_;
  std::vector<Scope> scopes_;
  std::vector<Frame> frames_;
  std::map<std::string, Value> constants_;  // by emitted name
  int counter_ = 0;
};

}  // namespace

FunDef specialize(const Module& mod, const std::string& fn, const std::vector<ArgSpec>& args) {
  Specializer s(mod);
  return s.run(fn, args);
}

}  // namespace saclo::sac
