#include "sac/interp.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace saclo::sac {

// --- environment -------------------------------------------------------------

Value* Interp::Env::find(const std::string& name) {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    auto f = it->vars.find(name);
    if (f != it->vars.end()) return &f->second;
  }
  return nullptr;
}

void Interp::Env::define(const std::string& name, Value v) {
  scopes.back().vars.insert_or_assign(name, std::move(v));
}

void Interp::Env::assign(const std::string& name, Value v) {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    auto f = it->vars.find(name);
    if (f != it->vars.end()) {
      f->second = std::move(v);
      return;
    }
    if (it->barrier) break;
  }
  // First assignment introduces the variable (SaC-style untyped local).
  define(name, std::move(v));
}

// --- entry points --------------------------------------------------------------

Value Interp::call(const std::string& fn, std::vector<Value> args) {
  if (is_builtin(fn)) return eval_builtin(fn, args);
  const FunDef* def = mod_->find(fn);
  if (def == nullptr) throw EvalError(cat("call to unknown function '", fn, "'"));
  if (def->params.size() != args.size()) {
    throw EvalError(cat("function '", fn, "' expects ", def->params.size(), " arguments, got ",
                        args.size()));
  }
  Env env;
  env.push(true);
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.define(def->params[i].second, std::move(args[i]));
  }
  Value returned;
  if (!exec_block(def->body, env, &returned)) {
    throw EvalError(cat("function '", fn, "' did not return a value"));
  }
  return returned;
}

Value Interp::eval_closed(const Expr& expr) {
  Env env;
  env.push(true);
  return eval(expr, env);
}

std::optional<Value> Interp::exec_stmts(const std::vector<StmtPtr>& stmts,
                                        std::map<std::string, Value>& vars) {
  Env env;
  env.push(true);
  for (auto& [name, value] : vars) env.define(name, value);
  Value returned;
  const bool has_return = exec_block(stmts, env, &returned);
  for (auto& [name, value] : env.scopes.front().vars) {
    vars.insert_or_assign(name, std::move(value));
  }
  if (has_return) return returned;
  return std::nullopt;
}

// --- statements ----------------------------------------------------------------

bool Interp::exec_block(const std::vector<StmtPtr>& block, Env& env, Value* returned) {
  for (const StmtPtr& s : block) {
    if (exec(*s, env, returned)) return true;
  }
  return false;
}

bool Interp::exec(const Stmt& stmt, Env& env, Value* returned) {
  switch (stmt.kind) {
    case StmtKind::Assign: {
      Value v = stmt.value ? eval(*stmt.value, env) : Value();
      if (!stmt.value && stmt.decl_type && stmt.decl_type->kind == TypeSpec::Dims::Described) {
        // `int[1080,1920] frame;` — a zero-initialised declared array.
        Index dims;
        for (std::int64_t d : stmt.decl_type->dims) {
          if (d < 0) throw EvalError(cat("declaration of '", stmt.target,
                                         "' without initialiser needs concrete extents"));
          dims.push_back(d);
        }
        if (stmt.decl_type->elem == ElemType::Float) {
          v = Value(FloatArray(Shape(dims)));
        } else {
          v = Value(IntArray(Shape(dims)));
        }
      }
      env.assign(stmt.target, std::move(v));
      return false;
    }
    case StmtKind::ElemAssign: {
      Value* slot = env.find(stmt.target);
      if (slot == nullptr) {
        throw EvalError(cat("element assignment to unknown variable '", stmt.target,
                            "' at line ", stmt.line));
      }
      const Value rhs = eval(*stmt.value, env);
      elem_assign(*slot, stmt.indices, rhs, env);
      return false;
    }
    case StmtKind::For: {
      env.assign(stmt.target, eval(*stmt.for_init, env));
      for (;;) {
        if (!eval(*stmt.for_cond, env).as_bool()) break;
        if (exec_block(stmt.body, env, returned)) return true;
        const std::int64_t step = eval(*stmt.for_step, env).as_int();
        Value* iv = env.find(stmt.target);
        *iv = Value::from_int(iv->as_int() + step);
        ops_ += 2;
      }
      return false;
    }
    case StmtKind::If: {
      if (eval(*stmt.value, env).as_bool()) {
        return exec_block(stmt.body, env, returned);
      }
      return exec_block(stmt.else_body, env, returned);
    }
    case StmtKind::Return: {
      if (returned != nullptr) *returned = eval(*stmt.value, env);
      return true;
    }
  }
  return false;
}

void Interp::elem_assign(Value& target, const std::vector<ExprPtr>& indices, const Value& rhs,
                         Env& env) {
  // Concatenate all bracket expressions into one prefix index.
  Index prefix;
  for (const ExprPtr& e : indices) {
    const Value idx = eval(*e, env);
    if (idx.shape().rank() == 0) {
      prefix.push_back(idx.as_int());
    } else {
      const Index v = idx.as_index_vector();
      prefix.insert(prefix.end(), v.begin(), v.end());
    }
  }
  const Shape& full = target.shape();
  if (prefix.size() > full.rank()) {
    throw EvalError(cat("index of rank ", prefix.size(), " into array of rank ", full.rank()));
  }
  const Shape cell = full.drop(prefix.size());
  if (rhs.shape() != cell) {
    throw EvalError(cat("element assignment shape mismatch: writing ", rhs.shape().to_string(),
                        " into cell of shape ", cell.to_string()));
  }
  // Compute the linear offset of the cell.
  Index at = prefix;
  at.resize(full.rank(), 0);
  const std::int64_t base = full.linearize(at);
  const std::int64_t n = cell.elements();
  ops_ += static_cast<double>(n);
  if (target.is_int()) {
    if (!rhs.is_int()) throw EvalError("assigning float cell into int array");
    for (std::int64_t i = 0; i < n; ++i) target.ints()[base + i] = rhs.ints()[i];
  } else {
    if (!rhs.is_float()) throw EvalError("assigning int cell into float array");
    for (std::int64_t i = 0; i < n; ++i) target.floats()[base + i] = rhs.floats()[i];
  }
}

// --- expressions ------------------------------------------------------------------

Value Interp::eval(const Expr& expr, Env& env) {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      return Value::from_int(expr.int_val);
    case ExprKind::FloatLit:
      return Value::from_double(expr.float_val);
    case ExprKind::Var: {
      Value* v = env.find(expr.name);
      if (v == nullptr) throw EvalError(cat("unknown variable '", expr.name, "' at line ", expr.line));
      return *v;
    }
    case ExprKind::ArrayLit: {
      if (expr.args.empty()) return Value(IntArray(Shape{0}));
      std::vector<Value> elems;
      elems.reserve(expr.args.size());
      for (const ExprPtr& a : expr.args) elems.push_back(eval(*a, env));
      const Shape cell = elems[0].shape();
      const bool is_int = elems[0].is_int();
      Shape full = Shape{static_cast<std::int64_t>(elems.size())}.concat(cell);
      const std::int64_t cell_n = cell.elements();
      if (is_int) {
        IntArray out(full);
        for (std::size_t i = 0; i < elems.size(); ++i) {
          if (!elems[i].is_int() || elems[i].shape() != cell) {
            throw EvalError("heterogeneous array literal");
          }
          for (std::int64_t j = 0; j < cell_n; ++j) {
            out[static_cast<std::int64_t>(i) * cell_n + j] = elems[i].ints()[j];
          }
        }
        return Value(std::move(out));
      }
      FloatArray out(full);
      for (std::size_t i = 0; i < elems.size(); ++i) {
        if (!elems[i].is_float() || elems[i].shape() != cell) {
          throw EvalError("heterogeneous array literal");
        }
        for (std::int64_t j = 0; j < cell_n; ++j) {
          out[static_cast<std::int64_t>(i) * cell_n + j] = elems[i].floats()[j];
        }
      }
      return Value(std::move(out));
    }
    case ExprKind::BinOp:
      return eval_binop(expr, env);
    case ExprKind::UnOp: {
      const Value v = eval(*expr.args[0], env);
      ops_ += static_cast<double>(v.shape().elements());
      if (expr.un_op == UnOpKind::Not) return Value::from_bool(!v.as_bool());
      if (v.is_int()) {
        IntArray out = v.ints();
        for (std::int64_t i = 0; i < out.elements(); ++i) out[i] = -out[i];
        return Value(std::move(out));
      }
      FloatArray out = v.floats();
      for (std::int64_t i = 0; i < out.elements(); ++i) out[i] = -out[i];
      return Value(std::move(out));
    }
    case ExprKind::Call: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& a : expr.args) args.push_back(eval(*a, env));
      ops_ += 1;
      return call(expr.name, std::move(args));
    }
    case ExprKind::Select:
      return eval_select(expr, env);
    case ExprKind::With:
      return eval_with(expr, env);
  }
  throw EvalError("unreachable expression kind");
}

namespace {

template <typename T>
T scalar_op(BinOpKind op, T a, T b) {
  switch (op) {
    case BinOpKind::Add: return a + b;
    case BinOpKind::Sub: return a - b;
    case BinOpKind::Mul: return a * b;
    case BinOpKind::Div:
      if constexpr (std::is_integral_v<T>) {
        if (b == 0) throw EvalError("division by zero");
      }
      return a / b;
    case BinOpKind::Mod:
      if constexpr (std::is_integral_v<T>) {
        if (b == 0) throw EvalError("modulo by zero");
        return a % b;
      } else {
        throw EvalError("'%' on floats");
      }
    case BinOpKind::Lt: return static_cast<T>(a < b);
    case BinOpKind::Le: return static_cast<T>(a <= b);
    case BinOpKind::Gt: return static_cast<T>(a > b);
    case BinOpKind::Ge: return static_cast<T>(a >= b);
    case BinOpKind::Eq: return static_cast<T>(a == b);
    case BinOpKind::Ne: return static_cast<T>(a != b);
    case BinOpKind::And: return static_cast<T>(a != 0 && b != 0);
    case BinOpKind::Or: return static_cast<T>(a != 0 || b != 0);
    case BinOpKind::Concat: throw EvalError("unreachable: concat handled separately");
  }
  throw EvalError("unreachable binop");
}

template <typename T>
NDArray<T> elementwise(BinOpKind op, const NDArray<T>& a, const NDArray<T>& b) {
  // Shapes must match, or one side is a scalar (broadcast).
  if (a.shape() == b.shape()) {
    NDArray<T> out(a.shape());
    for (std::int64_t i = 0; i < out.elements(); ++i) out[i] = scalar_op(op, a[i], b[i]);
    return out;
  }
  if (a.shape().rank() == 0) {
    NDArray<T> out(b.shape());
    for (std::int64_t i = 0; i < out.elements(); ++i) out[i] = scalar_op(op, a[0], b[i]);
    return out;
  }
  if (b.shape().rank() == 0) {
    NDArray<T> out(a.shape());
    for (std::int64_t i = 0; i < out.elements(); ++i) out[i] = scalar_op(op, a[i], b[0]);
    return out;
  }
  throw EvalError(cat("shape mismatch in elementwise op: ", a.shape().to_string(), " vs ",
                      b.shape().to_string()));
}

}  // namespace

Value Interp::eval_binop(const Expr& expr, Env& env) {
  if (expr.bin_op == BinOpKind::Concat) {
    const Value a = eval(*expr.args[0], env);
    const Value b = eval(*expr.args[1], env);
    ops_ += static_cast<double>(a.shape().elements() + b.shape().elements());
    return eval_builtin("CAT", {a, b});
  }
  if (expr.bin_op == BinOpKind::And || expr.bin_op == BinOpKind::Or) {
    // Short-circuit on scalars.
    const Value a = eval(*expr.args[0], env);
    ops_ += 1;
    if (a.shape().rank() == 0) {
      const bool av = a.as_bool();
      if (expr.bin_op == BinOpKind::And && !av) return Value::from_bool(false);
      if (expr.bin_op == BinOpKind::Or && av) return Value::from_bool(true);
      return Value::from_bool(eval(*expr.args[1], env).as_bool());
    }
    const Value b = eval(*expr.args[1], env);
    return Value(elementwise(expr.bin_op, a.ints(), b.ints()));
  }
  const Value a = eval(*expr.args[0], env);
  const Value b = eval(*expr.args[1], env);
  ops_ += static_cast<double>(std::max(a.shape().elements(), b.shape().elements()));
  if (a.is_int() && b.is_int()) {
    return Value(elementwise(expr.bin_op, a.ints(), b.ints()));
  }
  if (a.is_float() && b.is_float()) {
    return Value(elementwise(expr.bin_op, a.floats(), b.floats()));
  }
  throw EvalError(cat("mixed int/float operands to '", to_string(expr.bin_op), "' at line ",
                      expr.line));
}

Value Interp::eval_select(const Expr& expr, Env& env) {
  const Value arr = eval(*expr.args[0], env);
  const Value idx = eval(*expr.args[1], env);
  Index prefix = idx.shape().rank() == 0 ? Index{idx.as_int()} : idx.as_index_vector();
  const Shape& full = arr.shape();
  if (prefix.size() > full.rank()) {
    throw EvalError(cat("selection index ", bracketed(prefix), " has higher rank than array ",
                        full.to_string(), " at line ", expr.line));
  }
  for (std::size_t d = 0; d < prefix.size(); ++d) {
    if (prefix[d] < 0 || prefix[d] >= full[d]) {
      throw EvalError(cat("selection index ", bracketed(prefix), " out of bounds for ",
                          full.to_string(), " at line ", expr.line));
    }
  }
  const Shape cell = full.drop(prefix.size());
  Index at = prefix;
  at.resize(full.rank(), 0);
  const std::int64_t base = full.linearize(at);
  const std::int64_t n = cell.elements();
  ops_ += static_cast<double>(n);
  if (arr.is_int()) {
    if (cell.rank() == 0) return Value::from_int(arr.ints()[base]);
    IntArray out(cell);
    for (std::int64_t i = 0; i < n; ++i) out[i] = arr.ints()[base + i];
    return Value(std::move(out));
  }
  if (cell.rank() == 0) return Value::from_double(arr.floats()[base]);
  FloatArray out(cell);
  for (std::int64_t i = 0; i < n; ++i) out[i] = arr.floats()[base + i];
  return Value(std::move(out));
}

// --- with-loops -----------------------------------------------------------------

Interp::GenBounds Interp::resolve_generator(const Generator& g, const Shape& frame, Env& env) {
  const std::size_t rank = frame.rank();
  GenBounds b;
  auto as_vec = [&](const Value& v) {
    Index out = v.shape().rank() == 0 ? Index(rank, v.as_int()) : v.as_index_vector();
    if (out.size() != rank) {
      throw EvalError(cat("generator bound ", bracketed(out), " has rank ", out.size(),
                          ", frame has rank ", rank));
    }
    return out;
  };
  b.lower = g.lower ? as_vec(eval(*g.lower, env)) : Index(rank, 0);
  if (g.lower && !g.lower_inclusive) {
    for (auto& v : b.lower) ++v;
  }
  if (g.upper) {
    b.upper = as_vec(eval(*g.upper, env));
    if (g.upper_inclusive) {
      for (auto& v : b.upper) ++v;
    }
  } else {
    b.upper = frame.dims();  // `.` == up to the frame extent
  }
  b.step = g.step ? as_vec(eval(*g.step, env)) : Index(rank, 1);
  b.width = g.width ? as_vec(eval(*g.width, env)) : Index(rank, 1);
  for (std::size_t d = 0; d < rank; ++d) {
    if (b.step[d] < 1) throw EvalError(cat("generator step ", bracketed(b.step), " must be >= 1"));
    if (b.width[d] < 1 || b.width[d] > b.step[d]) {
      throw EvalError(cat("generator width ", bracketed(b.width), " must be in [1, step]"));
    }
  }
  return b;
}

Value Interp::eval_with(const Expr& expr, Env& env) {
  if (expr.op.kind == WithOpKind::Fold) {
    // fold(op, neutral): reduce the (scalar) cell values of every
    // generator with an associative-commutative operator.
    Value acc = eval(*expr.op.shape_or_target, env);
    if (acc.shape().rank() != 0) {
      throw EvalError(cat("fold neutral must be a scalar, got shape ",
                          acc.shape().to_string(), " at line ", expr.line));
    }
    const std::string& op = expr.op.fold_op;
    auto combine = [&](const Value& a, const Value& b) -> Value {
      if (op == "+") {
        if (a.is_int()) return Value::from_int(a.as_int() + b.as_int());
        return Value::from_double(a.as_double() + b.as_double());
      }
      if (op == "*") {
        if (a.is_int()) return Value::from_int(a.as_int() * b.as_int());
        return Value::from_double(a.as_double() * b.as_double());
      }
      if (op == "min" || op == "max") return eval_builtin(op, {a, b});
      throw EvalError(cat("unsupported fold operator '", op, "' at line ", expr.line));
    };
    for (const Generator& g : expr.generators) {
      if (!g.lower || !g.upper) {
        throw EvalError(cat("fold generators need explicit bounds at line ", expr.line));
      }
      // The frame for bound resolution is the generator's own exclusive
      // upper bound.
      Value ub = eval(*g.upper, env);
      Index frame_dims = ub.as_index_vector();
      if (g.upper_inclusive) {
        for (auto& v : frame_dims) ++v;
      }
      const Shape frame((frame_dims));
      const GenBounds b = resolve_generator(g, frame, env);
      const std::size_t rank = frame.rank();
      if (!g.vector_var && g.vars.size() != rank) {
        throw EvalError(cat("generator pattern has ", g.vars.size(), " variables, rank is ",
                            rank, " at line ", expr.line));
      }
      Index tile(rank, 0), w(rank, 0);
      bool any = true;
      for (std::size_t d = 0; d < rank; ++d) {
        if (b.lower[d] >= b.upper[d]) any = false;
      }
      if (!any) continue;
      auto current_iv = [&]() {
        Index out(rank);
        for (std::size_t d = 0; d < rank; ++d) out[d] = b.lower[d] + tile[d] * b.step[d] + w[d];
        return out;
      };
      auto advance = [&]() -> bool {
        for (std::size_t d = rank; d-- > 0;) {
          ++w[d];
          if (b.lower[d] + tile[d] * b.step[d] + w[d] < b.upper[d] && w[d] < b.width[d]) {
            return true;
          }
          w[d] = 0;
          ++tile[d];
          if (b.lower[d] + tile[d] * b.step[d] < b.upper[d]) return true;
          tile[d] = 0;
        }
        return false;
      };
      for (bool more = true; more; more = advance()) {
        const Index iv = current_iv();
        env.push(true);
        if (g.vector_var) {
          IntArray ivv(Shape{static_cast<std::int64_t>(rank)});
          for (std::size_t d = 0; d < rank; ++d) ivv[static_cast<std::int64_t>(d)] = iv[d];
          env.define(g.vars[0], Value(std::move(ivv)));
        } else {
          for (std::size_t d = 0; d < rank; ++d) env.define(g.vars[d], Value::from_int(iv[d]));
        }
        Value returned;
        exec_block(g.body, env, &returned);
        Value v = eval(*g.value, env);
        env.scopes.pop_back();
        if (v.shape().rank() != 0) {
          throw EvalError(cat("fold cells must be scalars, got ", v.shape().to_string(),
                              " at line ", expr.line));
        }
        acc = combine(acc, v);
        ops_ += 3;
      }
    }
    return acc;
  }

  // Determine the frame (the index space the generators range over).
  Shape frame;
  Value result;
  bool result_ready = false;
  Shape cell;
  bool cell_known = false;
  bool is_int = true;

  if (expr.op.kind == WithOpKind::Genarray) {
    const Value shp = eval(*expr.op.shape_or_target, env);
    frame = Shape(shp.as_index_vector());
    if (expr.op.default_value) {
      const Value def = eval(*expr.op.default_value, env);
      cell = def.shape();
      cell_known = true;
      is_int = def.is_int();
      const Shape full = frame.concat(cell);
      if (is_int) {
        IntArray out(full);
        std::int64_t pos = 0;
        const std::int64_t cn = cell.elements();
        for (std::int64_t i = 0; i < frame.elements(); ++i) {
          for (std::int64_t j = 0; j < cn; ++j) out[pos++] = def.ints()[j];
        }
        result = Value(std::move(out));
      } else {
        FloatArray out(full);
        std::int64_t pos = 0;
        const std::int64_t cn = cell.elements();
        for (std::int64_t i = 0; i < frame.elements(); ++i) {
          for (std::int64_t j = 0; j < cn; ++j) out[pos++] = def.floats()[j];
        }
        result = Value(std::move(out));
      }
      result_ready = true;
    }
  } else {
    const Value target = eval(*expr.op.shape_or_target, env);
    // The generator rank of a modarray may be lower than the array
    // rank; resolve it from the first generator's index variable count
    // when destructured, else from the target rank.
    std::size_t gen_rank = target.shape().rank();
    if (!expr.generators.empty() && !expr.generators[0].vector_var) {
      gen_rank = expr.generators[0].vars.size();
    }
    frame = target.shape().take(gen_rank);
    cell = target.shape().drop(gen_rank);
    cell_known = true;
    is_int = target.is_int();
    result = target;
    result_ready = true;
  }

  const std::int64_t cell_elems = cell_known ? cell.elements() : 0;

  for (const Generator& g : expr.generators) {
    if (!g.vector_var && g.vars.size() != frame.rank()) {
      throw EvalError(cat("generator pattern [", join(g.vars, ","), "] has ", g.vars.size(),
                          " variables, frame rank is ", frame.rank()));
    }
    const GenBounds b = resolve_generator(g, frame, env);

    // Iterate the generator's lattice.
    Index iv = b.lower;
    bool active_any = false;
    auto in_range = [&]() {
      for (std::size_t d = 0; d < iv.size(); ++d) {
        if (iv[d] >= b.upper[d]) return false;
      }
      return true;
    };
    if (!in_range()) continue;

    // Odometer over (tile, width) coordinates.
    const std::size_t rank = frame.rank();
    Index tile(rank, 0), w(rank, 0);
    auto current_iv = [&]() {
      Index out(rank);
      for (std::size_t d = 0; d < rank; ++d) out[d] = b.lower[d] + tile[d] * b.step[d] + w[d];
      return out;
    };
    auto advance = [&]() -> bool {
      for (std::size_t d = rank; d-- > 0;) {
        ++w[d];
        if (b.lower[d] + tile[d] * b.step[d] + w[d] < b.upper[d] && w[d] < b.width[d]) return true;
        w[d] = 0;
        ++tile[d];
        if (b.lower[d] + tile[d] * b.step[d] < b.upper[d]) return true;
        tile[d] = 0;
      }
      return false;
    };

    for (bool more = true; more; more = advance()) {
      iv = current_iv();
      active_any = true;
      env.push(true);
      if (g.vector_var) {
        IntArray ivv(Shape{static_cast<std::int64_t>(rank)});
        for (std::size_t d = 0; d < rank; ++d) ivv[static_cast<std::int64_t>(d)] = iv[d];
        env.define(g.vars[0], Value(std::move(ivv)));
      } else {
        for (std::size_t d = 0; d < rank; ++d) env.define(g.vars[d], Value::from_int(iv[d]));
      }
      Value returned;
      exec_block(g.body, env, &returned);
      Value v = eval(*g.value, env);
      env.scopes.pop_back();
      ops_ += 2;

      if (!cell_known) {
        cell = v.shape();
        cell_known = true;
        is_int = v.is_int();
      }
      if (!result_ready) {
        const Shape full = frame.concat(cell);
        result = is_int ? Value(IntArray(full)) : Value(FloatArray(full));
        result_ready = true;
      }
      if (v.shape() != cell || v.is_int() != is_int) {
        throw EvalError(cat("with-loop cell shape mismatch: ", v.shape().to_string(), " vs ",
                            cell.to_string(), " at line ", expr.line));
      }
      // Write the cell at iv.
      Index at = iv;
      at.resize(frame.rank() + cell.rank(), 0);
      const Shape full = frame.concat(cell);
      const std::int64_t base = full.linearize(at);
      const std::int64_t cn = cell_known ? cell.elements() : cell_elems;
      ops_ += static_cast<double>(cn);
      if (is_int) {
        for (std::int64_t i = 0; i < cn; ++i) result.ints()[base + i] = v.ints()[i];
      } else {
        for (std::int64_t i = 0; i < cn; ++i) result.floats()[base + i] = v.floats()[i];
      }
    }
    (void)active_any;
  }

  if (!result_ready) {
    // No generator produced a cell and no default: an empty genarray of
    // scalars.
    result = Value(IntArray(frame));
  }
  return result;
}

Value run_function(const Module& mod, const std::string& fn, std::vector<Value> args) {
  Interp interp(mod);
  return interp.call(fn, std::move(args));
}

}  // namespace saclo::sac
