#pragma once

#include <string>

#include "sac/ast.hpp"
#include "sac/lexer.hpp"

namespace saclo::sac {

/// Parses a mini-SaC module. Throws ParseError with line/column
/// diagnostics on malformed input.
Module parse(const std::string& source);

/// Parses a single expression (used by tests and the REPL-style
/// examples).
ExprPtr parse_expression(const std::string& source);

}  // namespace saclo::sac
