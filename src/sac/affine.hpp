#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sac/ast.hpp"

namespace saclo::sac::affine {

/// A linear form  c0 + sum_d coeff[d] * t_d  over the *lattice
/// coordinates* t_d of one with-loop generator. Lattice coordinates are
/// non-negative by construction (iv_d = lb_d + step_d * t_d), which is
/// what makes the truncated-division simplification rules sound:
///   (sum b_d t_d + a) / k == sum (b_d/k) t_d + a/k   when all b_d >= 0,
///                                                    b_d % k == 0, a >= 0
///   (sum b_d t_d + a) % k == a % k                   under the same side
///                                                    conditions.
struct Lin {
  std::vector<std::int64_t> coeff;
  std::int64_t c0 = 0;

  bool is_const() const;
  bool operator==(const Lin& other) const = default;
};

/// The iteration lattice of a concrete generator: per dimension,
/// iv_d = lb_d + step_d * t_d with t_d in [0, extent_d). Only width-1
/// generators are represented (wider ones are never folded).
struct Lattice {
  struct Dim {
    std::int64_t lb = 0;
    std::int64_t step = 1;
    std::int64_t extent = 0;
  };
  std::vector<Dim> dims;
  /// Scalar index-variable names (destructured generators); empty when
  /// the generator binds a single vector variable.
  std::vector<std::string> scalar_names;
  /// The vector index-variable name; empty when destructured.
  std::string vector_name;

  std::size_t rank() const { return dims.size(); }
};

/// Evaluates expressions to (vectors of) linear forms over a lattice,
/// following the straight-line bindings of a generator body.
class AffineEval {
 public:
  explicit AffineEval(const Lattice& lattice) : lat_(&lattice) {}

  /// Records the bindings of a straight-line generator body so that
  /// variables defined there can be resolved. Bindings that are not
  /// affine are simply skipped (lookups of them fail).
  void bind_block(const std::vector<StmtPtr>& body);

  /// A scalar expression as a linear form, or nullopt.
  std::optional<Lin> eval_scalar(const Expr& e) const;

  /// An index expression as a vector of linear forms, or nullopt.
  std::optional<std::vector<Lin>> eval_vector(const Expr& e) const;

  /// Inclusive value range of a linear form over the lattice box.
  std::pair<std::int64_t, std::int64_t> range(const Lin& lin) const;

  const Lattice& lattice() const { return *lat_; }

 private:
  Lin lattice_var(std::size_t d) const;

  const Lattice* lat_;
  std::map<std::string, std::vector<Lin>> vec_bindings_;
  std::map<std::string, Lin> scalar_bindings_;
};

/// Renders a linear form back into an expression over the generator's
/// index variables: t_d == (iv_d - lb_d) / step_d. Trivial cases fold
/// (step 1, lb 0, zero/unit coefficients).
ExprPtr lin_to_expr(const Lin& lin, const Lattice& lattice);

/// A constrained set of one lattice coordinate:
/// { t : lo <= t < hi  and  t % m == r }. The workhorse of generator
/// splitting (WLF fold regions and %-elimination splits).
struct DimRegion {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t r = 0;
  std::int64_t m = 1;

  static DimRegion full(std::int64_t extent) { return {0, extent, 0, 1}; }

  std::int64_t count() const;
  bool empty() const { return count() == 0; }
  /// Smallest member (count() must be > 0).
  std::int64_t first() const;
  /// Largest member (count() must be > 0).
  std::int64_t last() const;

  std::optional<DimRegion> intersect(const DimRegion& other) const;
  /// The parts of *this not in `other` (disjoint union).
  std::vector<DimRegion> subtract(const DimRegion& other) const;

  bool operator==(const DimRegion& other) const = default;
};

/// A product of per-dimension regions.
using Box = std::vector<DimRegion>;

std::int64_t box_count(const Box& box);
std::optional<Box> box_intersect(const Box& a, const Box& b);
/// Orthogonal decomposition of a \ b into disjoint boxes.
std::vector<Box> box_subtract(const Box& a, const Box& b);

}  // namespace saclo::sac::affine
