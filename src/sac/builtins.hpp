#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sac/value.hpp"

namespace saclo::sac {

/// Raised on dynamic semantic errors during evaluation (bad shapes,
/// unknown names, division by zero, ...).
class EvalError : public Error {
 public:
  using Error::Error;
};

/// True when `name` is a builtin function of mini-SaC.
///
/// The builtins follow the SaC standard library operations the paper's
/// programs use: `shape`, `dim`, `MV` (matrix–vector product), `CAT`
/// (concatenation, same as `++`), plus the usual scalar helpers. They
/// are primitives rather than SaC-defined functions so the CUDA
/// backend can treat them as intrinsics (a with-loop calling them still
/// qualifies as a CUDA-with-loop; see Section VII of the paper).
bool is_builtin(const std::string& name);

/// Evaluates a builtin; throws EvalError on arity/shape errors.
Value eval_builtin(const std::string& name, const std::vector<Value>& args);

/// Names of all builtins (for the typechecker's scope seeding).
const std::vector<std::string>& builtin_names();

}  // namespace saclo::sac
