#pragma once

#include <map>
#include <optional>

#include "sac/affine.hpp"
#include "sac/ast.hpp"

namespace saclo::sac {

/// Concrete (fully literal) generator bounds, normalised to
/// [lb, ub) with explicit step and width vectors.
struct ConcreteGen {
  Index lb;
  Index ub;  ///< exclusive
  Index step;
  Index width;

  std::int64_t points() const;
};

/// Extracts literal bounds from a specialised generator; nullopt when
/// any bound is still symbolic.
std::optional<ConcreteGen> concrete_generator(const Generator& g);

/// The iteration lattice of a width-1 concrete generator (nullopt when
/// not concrete or any width != 1).
std::optional<affine::Lattice> lattice_of(const Generator& g);

/// Statistics of an optimisation run, reported by the examples and the
/// WLF ablation bench.
struct OptStats {
  int folds = 0;              ///< producer cells substituted into consumers
  int generator_splits = 0;   ///< sub-generators created by folding/mod-splitting
  int mods_removed = 0;       ///< `% extent` operations proven redundant
  int modarrays_converted = 0;
  int stmts_removed = 0;      ///< dead statements eliminated

  OptStats& operator+=(const OptStats& other);
};

/// With-Loop Folding (Scholz '98, as used in Section VII of the paper):
/// substitutes the cells of producer with-loops into consumer
/// with-loops whose accesses are affine on the generator lattice,
/// splitting consumer generators where different producer generators
/// (or the default) apply. For-loop consumers are *not* folded — the
/// exact limitation that makes the paper's generic output tiler slow.
OptStats run_wlf(std::vector<StmtPtr>& body);

/// Splits generators so that `x % extent` index computations whose
/// value provably stays in range disappear (the source of the paper's
/// Figure 8 boundary generators).
OptStats run_mod_split(std::vector<StmtPtr>& body);

/// Converts fully covered modarray with-loops into genarray form,
/// dropping the dependency on the overwritten array. `shapes` supplies
/// the shapes of function parameters (other shapes are inferred).
OptStats convert_modarray(std::vector<StmtPtr>& body,
                          const std::map<std::string, Shape>& shapes);

/// Dead-code elimination over a (specialised) function body.
OptStats run_dce(std::vector<StmtPtr>& body);

/// Local simplification of every with-loop generator in the body
/// (constant folding, select forwarding, vector expansion, copy
/// propagation). Also run implicitly by the passes above.
void simplify_body(std::vector<StmtPtr>& body);

/// Rewrites a generator whose cells have shape `cell` (rank >= 1) so
/// that its value becomes an array literal of scalar element
/// expressions (row-major cell order), hoisting whatever producer
/// bodies that requires. Returns false when the cell cannot be
/// decomposed — the caller then falls back to host execution. Used by
/// the CUDA backend to outline kernels with non-scalar cells.
bool flatten_cell(Generator& g, const Shape& cell);

/// Infers the shapes of all top-level assigned variables of a
/// specialised body, given the parameter shapes.
std::map<std::string, Shape> infer_shapes(const std::vector<StmtPtr>& body,
                                          const std::map<std::string, Shape>& param_shapes);

/// The full sac2c-style pipeline: modarray conversion, WLF to fixpoint,
/// %-elimination, DCE. With `enable_wlf` false only simplification and
/// DCE run (the paper's "no WLF" baseline for the ablation bench).
OptStats optimize(std::vector<StmtPtr>& body, const std::map<std::string, Shape>& param_shapes,
                  bool enable_wlf);

}  // namespace saclo::sac
