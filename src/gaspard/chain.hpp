#pragma once

#include <map>
#include <string>
#include <vector>

#include "arrayol/model.hpp"
#include "gpu/runtime_opencl.hpp"

namespace saclo::gaspard {

/// Raised when the transformation chain or the runner fails.
class ChainError : public Error {
 public:
  using Error::Error;
};

/// One OpenCL kernel generated from a repetitive task — GASPARD2 maps
/// each elementary task instance to exactly one kernel whose work items
/// are the repetition points (Section V of the paper). Contrast with
/// the SaC backend's one-kernel-per-generator.
struct TaskKernel {
  std::string name;
  aol::TaskId task = 0;
  std::int64_t work_items = 0;
  gpu::KernelCost cost;
  std::string opencl_source;
};

/// Where each array lives in the generated application.
struct BufferPlan {
  std::string array;
  Shape shape;
  bool is_input = false;
  bool is_output = false;
};

/// The result of the GASPARD2-style transformation chain:
///   UML/MARTE model (here: the aol::Model API)
///     -> validate -> schedule -> allocate buffers -> generate OpenCL.
/// The object is both the generated source (for inspection / golden
/// tests) and an executable artefact on the simulated device.
class OpenClApplication {
 public:
  static OpenClApplication build(aol::Model model);

  const aol::Model& model() const { return model_; }
  const std::vector<TaskKernel>& kernels() const { return kernels_; }
  const std::vector<BufferPlan>& buffers() const { return buffers_; }
  const std::vector<aol::TaskId>& schedule() const { return schedule_; }

  /// The full generated .cl translation unit.
  std::string opencl_source() const;

  /// Runs one invocation: writes the input arrays, launches every task
  /// kernel in schedule order, reads the outputs back. execute=false
  /// accrues simulated time only.
  std::map<std::string, IntArray> run(gpu::opencl::CommandQueue& queue,
                                      const std::map<std::string, IntArray>& inputs,
                                      bool execute);

  /// Multi-queue variant: input writes on `upload`, kernels on
  /// `compute`, output reads on `download`. Data hazards on the
  /// buffers order the three queues; with distinct queues the
  /// transfers of neighbouring invocations overlap this one's kernels
  /// (the async command-queue pipeline). Results are bit-exact versus
  /// the single-queue path.
  std::map<std::string, IntArray> run(gpu::opencl::CommandQueue& upload,
                                      gpu::opencl::CommandQueue& compute,
                                      gpu::opencl::CommandQueue& download,
                                      const std::map<std::string, IntArray>& inputs,
                                      bool execute);

 private:
  aol::Model model_{""};
  std::vector<TaskKernel> kernels_;
  std::vector<BufferPlan> buffers_;
  std::vector<aol::TaskId> schedule_;
};

/// Generates the Figure 11-style tiler code of one input port (exposed
/// for the golden tests).
std::string emit_tiler_code(const aol::RepetitiveTask& task, const aol::TiledPort& port,
                            bool is_input, const Shape& array_shape);

}  // namespace saclo::gaspard
