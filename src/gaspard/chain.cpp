#include "gaspard/chain.hpp"

#include <algorithm>
#include <array>

#include "core/fmt.hpp"
#include "opt/cost.hpp"

namespace saclo::gaspard {

using aol::Model;
using aol::RepetitiveTask;
using aol::TiledPort;

namespace {

constexpr std::size_t kMaxRank = 4;

/// Precomputed per-kernel addressing data so the functional kernel body
/// does no heap allocation: for each port, the paving matrix columns
/// (for the reference element) and the per-pattern-element fitting
/// offsets F·i.
struct PortAddressing {
  std::size_t array_rank = 0;
  std::array<std::int64_t, kMaxRank> origin{};
  std::array<std::int64_t, kMaxRank> array_dims{};
  std::array<std::int64_t, kMaxRank> array_strides{};
  // paving[d][r] laid out row-major, rank x rep_rank
  std::array<std::int64_t, kMaxRank * kMaxRank> paving{};
  std::size_t rep_rank = 0;
  /// Per pattern element: the F·i offset vector.
  std::vector<std::array<std::int64_t, kMaxRank>> fit_offsets;
};

PortAddressing make_addressing(const TiledPort& tp, const Shape& array_shape,
                               const Shape& repetition) {
  PortAddressing pa;
  pa.array_rank = array_shape.rank();
  pa.rep_rank = repetition.rank();
  if (pa.array_rank > kMaxRank || pa.rep_rank > kMaxRank) {
    throw ChainError("arrays of rank > 4 are not supported by the OpenCL generator");
  }
  const Index strides = array_shape.strides();
  for (std::size_t d = 0; d < pa.array_rank; ++d) {
    pa.origin[d] = tp.tiler.origin[d];
    pa.array_dims[d] = array_shape[d];
    pa.array_strides[d] = strides[d];
    for (std::size_t r = 0; r < pa.rep_rank; ++r) {
      pa.paving[d * kMaxRank + r] = tp.tiler.paving.at(d, r);
    }
  }
  for_each_index(tp.pattern, [&](const Index& pat) {
    const Index f = tp.tiler.fitting.mv(pat);
    std::array<std::int64_t, kMaxRank> off{};
    for (std::size_t d = 0; d < pa.array_rank; ++d) off[d] = f[d];
    pa.fit_offsets.push_back(off);
  });
  return pa;
}

}  // namespace

std::string emit_tiler_code(const RepetitiveTask& task, const TiledPort& port, bool is_input,
                            const Shape& array_shape) {
  const std::size_t rank = array_shape.rank();
  const std::size_t rep_rank = task.repetition.rank();
  std::string s;
  s += cat("//--- Tiler ", task.name, "::", is_input ? "in" : "out", "_", port.port.name,
           " ---\n");
  s += "{ //start block\n";
  s += cat("  uint tl[", std::max<std::size_t>(port.pattern.rank(), 1), "];\n");
  s += cat("  uint ref[", rank, "];\n");
  s += cat("  uint index[", rank, "];\n");
  // Reference point based on the paving matrix.
  for (std::size_t d = 0; d < rank; ++d) {
    std::string line = cat("  ref[", d, "] = ", port.tiler.origin[d]);
    for (std::size_t r = 0; r < rep_rank; ++r) {
      line += cat(" + ", port.tiler.paving.at(d, r), "*tlIter[", r, "]");
    }
    s += line + ";\n";
  }
  // Pattern filling based on the fitting matrix. Rank-1 patterns keep
  // the paper's single-counter loop; higher ranks (produced by the
  // optimizer's paving changes and fusions) decode a linear counter
  // into per-dimension coordinates, last dimension fastest — the same
  // order the host reference gathers in.
  const std::int64_t pattern_elems = port.pattern.elements();
  const std::string buf_idx = port.pattern.rank() > 1 ? "tl_lin" : "tl[0]";
  if (port.pattern.rank() > 1) {
    s += cat("  for(uint tl_lin=0; tl_lin < ", pattern_elems, "; tl_lin++) {\n");
    s += "    uint tl_rem = tl_lin;\n";
    for (std::size_t p = port.pattern.rank(); p-- > 1;) {
      s += cat("    tl[", p, "] = tl_rem % ", port.pattern[p], "; tl_rem /= ", port.pattern[p],
               ";\n");
    }
    s += "    tl[0] = tl_rem;\n";
  } else {
    s += cat("  for(tl[0]=0; tl[0] < ", pattern_elems, "; tl[0]++) {\n");
  }
  for (std::size_t d = 0; d < rank; ++d) {
    std::string line = cat("    index[", d, "]= (ref[", d, "]");
    for (std::size_t p = 0; p < port.pattern.rank(); ++p) {
      line += cat(" + ", port.tiler.fitting.at(d, p), "*tl[", p, "]");
    }
    s += line + cat(") % ", array_shape[d], ";\n");
  }
  std::string addr;
  const Index strides = array_shape.strides();
  for (std::size_t d = 0; d < rank; ++d) {
    addr += cat(d ? " + " : "", "index[", d, "] * ", strides[d]);
  }
  if (is_input) {
    s += cat("    in_", port.port.name, "[", buf_idx, "] = ", port.port.name, "_g[", addr,
             "];\n");
  } else {
    s += cat("    ", port.port.name, "_g[", addr, "] = out_", port.port.name, "[", buf_idx,
             "];\n");
  }
  s += "  } //end for\n";
  s += "} // end block\n";
  return s;
}

namespace {

std::string emit_kernel_source_text(const Model& model, const RepetitiveTask& task,
                                    const std::string& kernel_name) {
  std::string s;
  std::vector<std::string> params;
  for (const TiledPort& in : task.inputs) {
    params.push_back("__global const int* " + in.port.name + "_g");
  }
  for (const TiledPort& out : task.outputs) {
    params.push_back("__global int* " + out.port.name + "_g");
  }
  s += "__kernel void " + kernel_name + "(" + join(params, ", ") + ")\n{\n";
  s += "  uint iGID = get_global_id(0);\n";
  const std::int64_t work_items = task.repetition.elements();
  s += cat("  if (iGID >= ", work_items, ") return;\n");
  // Work-item decode, dimension 0 fastest (Figure 11's iGID % n).
  s += cat("  uint tlIter[", task.repetition.rank(), "];\n");
  std::string rest = "iGID";
  for (std::size_t d = 0; d < task.repetition.rank(); ++d) {
    s += cat("  tlIter[", d, "] = ", rest, " % ", task.repetition[d], ";\n");
    if (d + 1 < task.repetition.rank()) {
      s += cat("  uint rem", d, " = ", rest, " / ", task.repetition[d], ";\n");
      rest = cat("rem", d);
    }
  }
  // Private-memory pattern buffers + input tilers.
  for (const TiledPort& in : task.inputs) {
    s += cat("  int in_", in.port.name, "[", in.pattern.elements(), "];\n");
  }
  for (const TiledPort& out : task.outputs) {
    s += cat("  int out_", out.port.name, "[", out.pattern.elements(), "];\n");
  }
  for (const TiledPort& in : task.inputs) {
    s += emit_tiler_code(task, in, /*is_input=*/true, model.array_shape(in.port.name));
  }
  // The IP body.
  s += "  { // IP: " + task.op.name + "\n";
  s += "    const int* in = in_" + (task.inputs.empty() ? "" : task.inputs[0].port.name) + ";\n";
  s += "    int* out = out_" + (task.outputs.empty() ? "" : task.outputs[0].port.name) + ";\n";
  for (const std::string& line : {task.op.c_body}) {
    s += "    " + line + "\n";
  }
  s += "  }\n";
  for (const TiledPort& out : task.outputs) {
    s += emit_tiler_code(task, out, /*is_input=*/false, model.array_shape(out.port.name));
  }
  s += "}\n";
  return s;
}

}  // namespace

OpenClApplication OpenClApplication::build(Model model) {
  OpenClApplication app;
  model.validate();
  app.schedule_ = model.schedule();

  // Buffer allocation plan.
  for (const auto& [name, shape] : model.arrays()) {
    BufferPlan plan;
    plan.array = name;
    plan.shape = shape;
    plan.is_input =
        std::find(model.inputs().begin(), model.inputs().end(), name) != model.inputs().end();
    plan.is_output =
        std::find(model.outputs().begin(), model.outputs().end(), name) != model.outputs().end();
    app.buffers_.push_back(std::move(plan));
  }

  // Code generation: one kernel per repetitive task.
  for (aol::TaskId t : app.schedule_) {
    const RepetitiveTask& task = model.tasks()[t];
    TaskKernel k;
    k.task = t;
    k.name = "KRN_" + task.name;
    k.work_items = task.repetition.elements();
    // The optimizer predicts makespans with the same derivation, so the
    // search's cost gate and the simulated timings cannot drift apart.
    k.cost = opt::derive_task_cost(model, task);
    k.opencl_source = emit_kernel_source_text(model, task, k.name);
    app.kernels_.push_back(std::move(k));
  }
  app.model_ = std::move(model);
  return app;
}

std::string OpenClApplication::opencl_source() const {
  std::string s = cat("// Generated by the saclo GASPARD2-style chain for model '",
                      model_.name(), "'.\n\n");
  for (const TaskKernel& k : kernels_) {
    s += k.opencl_source;
    s += "\n";
  }
  return s;
}

std::map<std::string, IntArray> OpenClApplication::run(
    gpu::opencl::CommandQueue& queue, const std::map<std::string, IntArray>& inputs,
    bool execute) {
  return run(queue, queue, queue, inputs, execute);
}

std::map<std::string, IntArray> OpenClApplication::run(
    gpu::opencl::CommandQueue& upload, gpu::opencl::CommandQueue& compute,
    gpu::opencl::CommandQueue& download, const std::map<std::string, IntArray>& inputs,
    bool execute) {
  // Create buffers (int32 frames, as on the paper's device).
  std::map<std::string, gpu::opencl::Buffer> buffers;
  for (const BufferPlan& plan : buffers_) {
    buffers.emplace(plan.array,
                    compute.create_buffer(plan.shape.elements() * static_cast<std::int64_t>(4)));
  }
  // Upload inputs.
  for (const BufferPlan& plan : buffers_) {
    if (!plan.is_input) continue;
    if (execute) {
      auto it = inputs.find(plan.array);
      if (it == inputs.end()) throw ChainError(cat("missing input '", plan.array, "'"));
      auto dev = buffers.at(plan.array).view<std::int32_t>();
      for (std::int64_t i = 0; i < it->second.elements(); ++i) {
        dev[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(it->second[i]);
      }
    }
    upload.account_write(buffers.at(plan.array), plan.shape.elements() * 4);
  }

  // Launch every task kernel in schedule order.
  for (const TaskKernel& k : kernels_) {
    const RepetitiveTask& task = model_.tasks()[k.task];
    // Precompute addressing and bind device views.
    struct BoundPort {
      PortAddressing addr;
      std::span<std::int32_t> data;
    };
    std::vector<BoundPort> ins;
    std::vector<BoundPort> outs;
    std::int64_t in_total = 0;
    std::int64_t out_total = 0;
    for (const TiledPort& in : task.inputs) {
      ins.push_back(BoundPort{make_addressing(in, model_.array_shape(in.port.name),
                                              task.repetition),
                              buffers.at(in.port.name).view<std::int32_t>()});
      in_total += in.pattern.elements();
    }
    for (const TiledPort& out : task.outputs) {
      outs.push_back(BoundPort{make_addressing(out, model_.array_shape(out.port.name),
                                               task.repetition),
                               buffers.at(out.port.name).view<std::int32_t>()});
      out_total += out.pattern.elements();
    }
    const auto* op = &task.op;
    std::array<std::int64_t, kMaxRank> rep_dims{};
    const std::size_t rep_rank = task.repetition.rank();
    for (std::size_t d = 0; d < rep_rank; ++d) rep_dims[d] = task.repetition[d];

    gpu::KernelLaunch launch;
    launch.name = k.name;
    launch.threads = k.work_items;
    launch.cost = k.cost;
    for (const TiledPort& in : task.inputs) {
      launch.reads.push_back(buffers.at(in.port.name).handle());
    }
    for (const TiledPort& out : task.outputs) {
      launch.writes.push_back(buffers.at(out.port.name).handle());
    }
    // One work-item's gather/compute/scatter against caller-provided
    // pattern buffers; shared between the per-id body (thread_local
    // scratch) and the range body (per-chunk scratch).
    auto run_one = [ins, outs, op, rep_dims, rep_rank, in_total, out_total](
                       std::int64_t tid, std::vector<std::int64_t>& in_buf,
                       std::vector<std::int64_t>& out_buf) {
      // Work-item decode, dimension 0 fastest.
      std::array<std::int64_t, kMaxRank> rep{};
      std::int64_t rest = tid;
      for (std::size_t d = 0; d < rep_rank; ++d) {
        rep[d] = rest % rep_dims[d];
        rest /= rep_dims[d];
      }
      // Gather input patterns.
      std::size_t pos = 0;
      for (const BoundPort& bp : ins) {
        std::array<std::int64_t, kMaxRank> ref{};
        for (std::size_t d = 0; d < bp.addr.array_rank; ++d) {
          std::int64_t v = bp.addr.origin[d];
          for (std::size_t r = 0; r < bp.addr.rep_rank; ++r) {
            v += bp.addr.paving[d * kMaxRank + r] * rep[r];
          }
          ref[d] = v;
        }
        for (const auto& fit : bp.addr.fit_offsets) {
          std::int64_t off = 0;
          for (std::size_t d = 0; d < bp.addr.array_rank; ++d) {
            std::int64_t idx = (ref[d] + fit[d]) % bp.addr.array_dims[d];
            if (idx < 0) idx += bp.addr.array_dims[d];
            off += idx * bp.addr.array_strides[d];
          }
          in_buf[pos++] = bp.data[static_cast<std::size_t>(off)];
        }
      }
      // The IP.
      op->compute(std::span<const std::int64_t>(in_buf.data(), static_cast<std::size_t>(in_total)),
                  std::span<std::int64_t>(out_buf.data(), static_cast<std::size_t>(out_total)));
      // Scatter output patterns.
      pos = 0;
      for (const BoundPort& bp : outs) {
        std::array<std::int64_t, kMaxRank> ref{};
        for (std::size_t d = 0; d < bp.addr.array_rank; ++d) {
          std::int64_t v = bp.addr.origin[d];
          for (std::size_t r = 0; r < bp.addr.rep_rank; ++r) {
            v += bp.addr.paving[d * kMaxRank + r] * rep[r];
          }
          ref[d] = v;
        }
        for (const auto& fit : bp.addr.fit_offsets) {
          std::int64_t off = 0;
          for (std::size_t d = 0; d < bp.addr.array_rank; ++d) {
            std::int64_t idx = (ref[d] + fit[d]) % bp.addr.array_dims[d];
            if (idx < 0) idx += bp.addr.array_dims[d];
            off += idx * bp.addr.array_strides[d];
          }
          bp.data[static_cast<std::size_t>(off)] =
              static_cast<std::int32_t>(out_buf[pos++]);
        }
      }
    };
    launch.body = [run_one, in_total, out_total](std::int64_t tid) {
      thread_local std::vector<std::int64_t> in_buf;
      thread_local std::vector<std::int64_t> out_buf;
      if (in_buf.size() < static_cast<std::size_t>(in_total)) in_buf.resize(in_total);
      if (out_buf.size() < static_cast<std::size_t>(out_total)) out_buf.resize(out_total);
      run_one(tid, in_buf, out_buf);
    };
    // Range form: pattern buffers are sized once per chunk, leaving the
    // tiler's gather/compute/scatter as the inner loop.
    launch.range_body = [run_one, in_total, out_total](std::int64_t begin, std::int64_t end) {
      std::vector<std::int64_t> in_buf(static_cast<std::size_t>(in_total));
      std::vector<std::int64_t> out_buf(static_cast<std::size_t>(out_total));
      for (std::int64_t tid = begin; tid < end; ++tid) run_one(tid, in_buf, out_buf);
    };
    compute.enqueue_ndrange(launch, execute);
  }

  // Read outputs back.
  std::map<std::string, IntArray> results;
  for (const BufferPlan& plan : buffers_) {
    if (!plan.is_output) continue;
    IntArray out(plan.shape);
    if (execute) {
      auto dev = buffers.at(plan.array).view<const std::int32_t>();
      for (std::int64_t i = 0; i < out.elements(); ++i) {
        out[i] = dev[static_cast<std::size_t>(i)];
      }
    }
    download.account_read(buffers.at(plan.array), plan.shape.elements() * 4);
    results.emplace(plan.array, std::move(out));
  }
  return results;
}

}  // namespace saclo::gaspard
