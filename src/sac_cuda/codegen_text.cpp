#include "sac_cuda/codegen_text.hpp"

#include <functional>
#include <set>

#include "core/fmt.hpp"

namespace saclo::sac_cuda {

using sac::BinOpKind;
using sac::Expr;
using sac::ExprKind;
using sac::Stmt;
using sac::StmtKind;
using sac::StmtPtr;

namespace {

int precedence(BinOpKind op) {
  switch (op) {
    case BinOpKind::Or: return 1;
    case BinOpKind::And: return 2;
    case BinOpKind::Eq:
    case BinOpKind::Ne: return 3;
    case BinOpKind::Lt:
    case BinOpKind::Le:
    case BinOpKind::Gt:
    case BinOpKind::Ge: return 4;
    case BinOpKind::Add:
    case BinOpKind::Sub: return 6;
    case BinOpKind::Mul:
    case BinOpKind::Div:
    case BinOpKind::Mod: return 7;
    case BinOpKind::Concat: return 0;
  }
  return 0;
}

/// Renders an expression as C. Selections become flat pointer
/// arithmetic using the array's row-major strides.
class CEmitter {
 public:
  explicit CEmitter(const std::map<std::string, Shape>& shapes) : shapes_(&shapes) {}

  std::string expr(const Expr& e, int parent_prec = 0) const {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
        return std::to_string(e.int_val);
      case ExprKind::FloatLit:
        return fixed(e.float_val, 6);
      case ExprKind::Var:
        return e.name;
      case ExprKind::BinOp: {
        const int prec = precedence(e.bin_op);
        std::string s = expr(*e.args[0], prec) + " " + sac::to_string(e.bin_op) + " " +
                        expr(*e.args[1], prec + 1);
        if (prec < parent_prec) s = "(" + s + ")";
        return s;
      }
      case ExprKind::UnOp:
        return (e.un_op == sac::UnOpKind::Neg ? "-" : "!") + expr(*e.args[0], 8);
      case ExprKind::Call: {
        std::vector<std::string> parts;
        for (const sac::ExprPtr& a : e.args) parts.push_back(expr(*a));
        return e.name + "(" + join(parts, ", ") + ")";
      }
      case ExprKind::Select: {
        const Expr& arr = *e.args[0];
        const Expr& idx = *e.args[1];
        if (arr.kind != ExprKind::Var) return "/*unsupported select*/0";
        auto it = shapes_->find(arr.name);
        if (it == shapes_->end()) return "/*unknown array*/0";
        const Index strides = it->second.strides();
        std::vector<const Expr*> comps;
        if (idx.kind == ExprKind::ArrayLit) {
          for (const sac::ExprPtr& c : idx.args) comps.push_back(c.get());
        } else {
          comps.push_back(&idx);
        }
        std::string off;
        for (std::size_t d = 0; d < comps.size(); ++d) {
          std::string term = expr(*comps[d], 7);
          if (strides[d] != 1) term = "(" + term + ") * " + std::to_string(strides[d]);
          off += (d ? " + " : "") + term;
        }
        return arr.name + "[" + off + "]";
      }
      default:
        return "/*unsupported*/0";
    }
  }

 private:
  const std::map<std::string, Shape>* shapes_;
};

}  // namespace

std::string emit_kernel_source(const GenKernel& k, const KernelGroup& group,
                               const std::map<std::string, Shape>& shapes) {
  CEmitter em(shapes);
  std::string s;
  // Signature: all read arrays const, the target array mutable.
  std::vector<std::string> params;
  for (const std::string& in : k.tape.array_names) {
    params.push_back("const int* " + in);
  }
  params.push_back("int* " + group.target);
  s += "__global__ void " + k.name + "(" + join(params, ", ") + ")\n{\n";
  s += "  int iGID = blockIdx.x * blockDim.x + threadIdx.x;\n";
  s += cat("  if (iGID >= ", k.threads, ") return;\n");
  // Dimension-0-fastest decode (the iGID % n mapping of Figure 11).
  const auto& dims = k.lattice.dims;
  std::string rest = "iGID";
  const Index full_strides = group.full.strides();
  std::string out_off;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const std::string t = cat("t", d);
    s += cat("  int ", t, " = ", rest, " % ", dims[d].extent, ";\n");
    if (d + 1 < dims.size()) {
      s += cat("  int r", d, " = ", rest, " / ", dims[d].extent, ";\n");
      rest = cat("r", d);
    }
    const std::string iv = k.lattice.scalar_names.empty()
                               ? cat(k.lattice.vector_name, "_", d)
                               : k.lattice.scalar_names[d];
    s += cat("  int ", iv, " = ", dims[d].lb, " + ", dims[d].step, " * ", t, ";\n");
    if (full_strides[d] == 1) {
      out_off += (d ? " + " : "") + iv;
    } else {
      out_off += (d ? " + " : "") + cat("(", iv, ") * ", full_strides[d]);
    }
  }
  // Body statements.
  for (const StmtPtr& st : k.source.body) {
    if (st->kind == StmtKind::Assign && st->value) {
      s += "  int " + st->target + " = " + em.expr(*st->value) + ";\n";
    }
  }
  // Cell element stores.
  std::vector<const Expr*> results;
  if (k.cell.rank() == 0) {
    results.push_back(k.source.value.get());
  } else {
    for (const sac::ExprPtr& e : k.source.value->args) results.push_back(e.get());
  }
  for (std::size_t c = 0; c < results.size(); ++c) {
    s += cat("  ", group.target, "[", out_off.empty() ? "0" : out_off,
             c > 0 ? cat(" + ", c) : std::string(), "] = ", em.expr(*results[c]), ";\n");
  }
  s += "}\n";
  return s;
}

std::string emit_cuda_source(const CudaProgram& program) {
  std::string s;
  s += "// Generated by the saclo SaC->CUDA backend (simulated nvcc input).\n";
  s += cat("// Function: ", program.compiled().fn.name, "\n\n");
  for (const Step& step : program.steps()) {
    if (step.kind != Step::Kind::Kernels) continue;
    for (const GenKernel& k : step.group.kernels) {
      s += emit_kernel_source(k, step.group, program.shapes());
      s += "\n";
    }
  }

  // Host driver.
  s += "void " + program.compiled().fn.name + "_host(";
  std::vector<std::string> params;
  for (const auto& [t, n] : program.compiled().fn.params) {
    (void)t;
    params.push_back("const int* " + n + "_h");
  }
  params.push_back("int* result_h");
  s += join(params, ", ") + ")\n{\n";
  std::set<std::string> on_device;
  for (const Step& step : program.steps()) {
    if (step.kind == Step::Kind::Host) {
      for (const std::string& r : step.host.array_reads) {
        if (on_device.count(r)) {
          s += cat("  cudaMemcpy(", r, "_h, ", r, ", sizeof(int) * N_", r,
                   ", cudaMemcpyDeviceToHost);  // host-executed statements follow\n");
          on_device.erase(r);
        }
      }
      s += "  /* host-executed statements (for-loop tiler or scalar glue) */\n";
      continue;
    }
    const KernelGroup& g = step.group;
    for (const std::string& in : g.inputs) {
      if (!on_device.count(in)) {
        s += cat("  cudaMalloc(&", in, ", sizeof(int) * N_", in, ");\n");
        s += cat("  cudaMemcpyAsync(", in, ", ", in, "_h, sizeof(int) * N_", in,
                 ", cudaMemcpyHostToDevice);\n");
        on_device.insert(in);
      }
    }
    s += cat("  cudaMalloc(&", g.target, ", sizeof(int) * ", g.full.elements(), ");\n");
    if (g.needs_default_fill) {
      s += cat("  fill<<<", (g.full.elements() + 255) / 256, ", 256>>>(", g.target, ", ",
               g.default_value, ");\n");
    }
    for (const GenKernel& k : g.kernels) {
      std::vector<std::string> args;
      for (const std::string& in : k.tape.array_names) args.push_back(in);
      args.push_back(g.target);
      s += cat("  ", k.name, "<<<", (k.threads + 255) / 256, ", 256>>>(", join(args, ", "),
               ");\n");
    }
    on_device.insert(g.target);
  }
  const std::string& rv = program.return_var();
  if (on_device.count(rv)) {
    s += cat("  cudaMemcpyAsync(result_h, ", rv, ", sizeof(int) * N_", rv,
             ", cudaMemcpyDeviceToHost);\n");
  }
  s += "}\n";
  return s;
}

std::string CudaProgram::cuda_source() const { return emit_cuda_source(*this); }

}  // namespace saclo::sac_cuda
