#include "sac_cuda/tape.hpp"

#include <algorithm>

#include "core/fmt.hpp"
#include "sac/specialize.hpp"
#include "sac/wlf.hpp"

namespace saclo::sac_cuda {

using sac::BinOpKind;
using sac::Expr;
using sac::ExprKind;
using sac::Stmt;
using sac::StmtKind;
using sac::StmtPtr;

int Tape::arith_ops() const {
  int n = 0;
  for (const TapeInstr& i : code) {
    switch (i.op) {
      case TapeOp::Push:
      case TapeOp::LoadSlot:
      case TapeOp::StoreSlot:
      case TapeOp::LoadArr:
        break;
      default:
        ++n;
    }
  }
  return n;
}

int Tape::array_loads() const {
  int n = 0;
  for (const TapeInstr& i : code) {
    if (i.op == TapeOp::LoadArr) ++n;
  }
  return n;
}

void Tape::run(std::span<std::int64_t> slots, std::span<const TapeArray> arrays) const {
  std::int64_t stack[64];
  int sp = 0;
  for (const TapeInstr& ins : code) {
    switch (ins.op) {
      case TapeOp::Push: stack[sp++] = ins.imm; break;
      case TapeOp::LoadSlot: stack[sp++] = slots[static_cast<std::size_t>(ins.a)]; break;
      case TapeOp::StoreSlot: slots[static_cast<std::size_t>(ins.a)] = stack[--sp]; break;
      case TapeOp::Add: --sp; stack[sp - 1] += stack[sp]; break;
      case TapeOp::Sub: --sp; stack[sp - 1] -= stack[sp]; break;
      case TapeOp::Mul: --sp; stack[sp - 1] *= stack[sp]; break;
      case TapeOp::Div:
        --sp;
        if (stack[sp] == 0) throw Error("tape: division by zero");
        stack[sp - 1] /= stack[sp];
        break;
      case TapeOp::Mod:
        --sp;
        if (stack[sp] == 0) throw Error("tape: modulo by zero");
        stack[sp - 1] %= stack[sp];
        break;
      case TapeOp::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case TapeOp::Not: stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0; break;
      case TapeOp::Abs: stack[sp - 1] = stack[sp - 1] < 0 ? -stack[sp - 1] : stack[sp - 1]; break;
      case TapeOp::Min: --sp; stack[sp - 1] = std::min(stack[sp - 1], stack[sp]); break;
      case TapeOp::Max: --sp; stack[sp - 1] = std::max(stack[sp - 1], stack[sp]); break;
      case TapeOp::Lt: --sp; stack[sp - 1] = stack[sp - 1] < stack[sp]; break;
      case TapeOp::Le: --sp; stack[sp - 1] = stack[sp - 1] <= stack[sp]; break;
      case TapeOp::Gt: --sp; stack[sp - 1] = stack[sp - 1] > stack[sp]; break;
      case TapeOp::Ge: --sp; stack[sp - 1] = stack[sp - 1] >= stack[sp]; break;
      case TapeOp::Eq: --sp; stack[sp - 1] = stack[sp - 1] == stack[sp]; break;
      case TapeOp::Ne: --sp; stack[sp - 1] = stack[sp - 1] != stack[sp]; break;
      case TapeOp::And: --sp; stack[sp - 1] = (stack[sp - 1] != 0 && stack[sp] != 0); break;
      case TapeOp::Or: --sp; stack[sp - 1] = (stack[sp - 1] != 0 || stack[sp] != 0); break;
      case TapeOp::LoadArr: {
        std::span<const std::int32_t> data;
        const Index* dims;
        const Index* strides;
        if (ins.a < 0) {
          const TapeImmediate& imm = imm_arrays[static_cast<std::size_t>(-ins.a - 1)];
          data = imm.data;
          dims = &imm.dims;
          strides = &imm.strides;
        } else {
          const TapeArray& arr = arrays[static_cast<std::size_t>(ins.a)];
          data = arr.data;
          dims = &arr.dims;
          strides = &arr.strides;
        }
        sp -= ins.b;
        std::int64_t off = 0;
        for (std::int32_t d = 0; d < ins.b; ++d) {
          const std::int64_t iv = stack[sp + d];
          if (iv < 0 || iv >= (*dims)[static_cast<std::size_t>(d)]) {
            throw Error(cat("tape: index ", iv, " out of bounds for dim ", d, " extent ",
                            (*dims)[static_cast<std::size_t>(d)]));
          }
          off += iv * (*strides)[static_cast<std::size_t>(d)];
        }
        stack[sp++] = data[static_cast<std::size_t>(off)];
        break;
      }
    }
  }
}

std::string Tape::to_string() const {
  std::string out;
  for (const TapeInstr& i : code) {
    switch (i.op) {
      case TapeOp::Push: out += cat("push ", i.imm, "\n"); break;
      case TapeOp::LoadSlot: out += cat("load s", i.a, "\n"); break;
      case TapeOp::StoreSlot: out += cat("store s", i.a, "\n"); break;
      case TapeOp::LoadArr:
        if (i.a < 0) {
          out += cat("ldimm #", -i.a - 1, " rank=", i.b, "\n");
        } else {
          out += cat("ldarr ", array_names[static_cast<std::size_t>(i.a)], " rank=", i.b, "\n");
        }
        break;
      default: out += cat("op#", static_cast<int>(i.op), "\n"); break;
    }
  }
  return out;
}

namespace {

class TapeBuilder {
 public:
  explicit TapeBuilder(const std::map<std::string, Index>& array_dims)
      : array_dims_(&array_dims) {}

  std::optional<Tape> build(const std::vector<StmtPtr>& body,
                            const std::vector<const Expr*>& results,
                            const std::vector<std::string>& index_vars) {
    for (const std::string& iv : index_vars) {
      tape_.index_slots.push_back(slot(iv));
    }
    for (const StmtPtr& s : body) {
      if (s->kind != StmtKind::Assign || !s->value) return std::nullopt;
      // Inner fold with-loops (reductions nested inside a kernel body,
      // e.g. the dot product of a matmul cell) compile by full
      // unrolling over their — necessarily small — lattice.
      if (s->value->kind == ExprKind::With) {
        if (!compile_inner_fold(*s->value)) return std::nullopt;
        tape_.code.push_back({TapeOp::StoreSlot, slot(s->target), 0, 0});
        continue;
      }
      // Vector-valued bindings must have been expanded away by the
      // simplifier; anything not scalar-compilable fails here.
      if (!compile_expr(*s->value)) return std::nullopt;
      tape_.code.push_back({TapeOp::StoreSlot, slot(s->target), 0, 0});
    }
    for (const Expr* r : results) {
      if (!compile_expr(*r)) return std::nullopt;
      const int rs = fresh_slot();
      tape_.result_slots.push_back(rs);
      tape_.code.push_back({TapeOp::StoreSlot, rs, 0, 0});
    }
    tape_.slot_count = next_slot_;
    return std::move(tape_);
  }

 private:
  int slot(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    const int s = next_slot_++;
    slots_.emplace(name, s);
    return s;
  }
  int fresh_slot() { return next_slot_++; }

  /// Unrolls `with { gens } : fold(op, neutral)` into straight-line
  /// tape code: neutral on the stack, then one combine per lattice
  /// point. Returns false (-> host fallback) for non-fold operations,
  /// symbolic bounds, non-scalar cells, or lattices above the unroll
  /// cap.
  bool compile_inner_fold(const Expr& w) {
    if (w.op.kind != sac::WithOpKind::Fold) return false;
    TapeOp combine;
    if (w.op.fold_op == "+") {
      combine = TapeOp::Add;
    } else if (w.op.fold_op == "*") {
      combine = TapeOp::Mul;
    } else if (w.op.fold_op == "min") {
      combine = TapeOp::Min;
    } else if (w.op.fold_op == "max") {
      combine = TapeOp::Max;
    } else {
      return false;
    }
    if (!compile_expr(*w.op.shape_or_target)) return false;  // the neutral
    constexpr std::int64_t kUnrollCap = 1024;
    std::int64_t total = 0;
    for (const sac::Generator& g : w.generators) {
      auto cg = sac::concrete_generator(g);
      if (!cg) return false;
      total += cg->points();
      if (total > kUnrollCap) return false;
      // Lattice point enumeration.
      bool ok = true;
      Shape box;
      {
        Index dims;
        for (std::size_t d = 0; d < cg->lb.size(); ++d) {
          const std::int64_t span = cg->ub[d] - cg->lb[d];
          dims.push_back(span > 0 ? (span + cg->step[d] - 1) / cg->step[d] : 0);
        }
        box = Shape(dims);
      }
      for_each_index(box, [&](const Index& t) {
        if (!ok) return;
        Index iv(t.size());
        for (std::size_t d = 0; d < t.size(); ++d) iv[d] = cg->lb[d] + cg->step[d] * t[d];
        // Width > 1 lattices are not unrolled (concrete_generator
        // normalises width==step; anything else fails earlier).
        for (std::size_t d = 0; d < t.size(); ++d) {
          if (cg->width[d] != 1) ok = false;
        }
        if (!ok) return;
        // Bind the generator variables for this point.
        if (g.vector_var) {
          ok = false;  // vector vars are destructured by the simplifier
          return;
        }
        for (std::size_t d = 0; d < g.vars.size(); ++d) {
          tape_.code.push_back({TapeOp::Push, 0, 0, iv[d]});
          tape_.code.push_back({TapeOp::StoreSlot, slot(g.vars[d]), 0, 0});
        }
        for (const StmtPtr& bs : g.body) {
          if (bs->kind != StmtKind::Assign || !bs->value || !compile_expr(*bs->value)) {
            ok = false;
            return;
          }
          tape_.code.push_back({TapeOp::StoreSlot, slot(bs->target), 0, 0});
        }
        if (!compile_expr(*g.value)) {
          ok = false;
          return;
        }
        tape_.code.push_back({combine, 0, 0, 0});
      });
      if (!ok) return false;
    }
    return true;
  }

  bool compile_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
        tape_.code.push_back({TapeOp::Push, 0, 0, e.int_val});
        return true;
      case ExprKind::FloatLit:
        return false;  // int-only kernels (the paper's programs are integral)
      case ExprKind::Var: {
        auto it = slots_.find(e.name);
        if (it == slots_.end()) return false;  // array var or unknown
        tape_.code.push_back({TapeOp::LoadSlot, it->second, 0, 0});
        return true;
      }
      case ExprKind::BinOp: {
        if (e.bin_op == BinOpKind::Concat) return false;
        if (!compile_expr(*e.args[0]) || !compile_expr(*e.args[1])) return false;
        TapeOp op;
        switch (e.bin_op) {
          case BinOpKind::Add: op = TapeOp::Add; break;
          case BinOpKind::Sub: op = TapeOp::Sub; break;
          case BinOpKind::Mul: op = TapeOp::Mul; break;
          case BinOpKind::Div: op = TapeOp::Div; break;
          case BinOpKind::Mod: op = TapeOp::Mod; break;
          case BinOpKind::Lt: op = TapeOp::Lt; break;
          case BinOpKind::Le: op = TapeOp::Le; break;
          case BinOpKind::Gt: op = TapeOp::Gt; break;
          case BinOpKind::Ge: op = TapeOp::Ge; break;
          case BinOpKind::Eq: op = TapeOp::Eq; break;
          case BinOpKind::Ne: op = TapeOp::Ne; break;
          case BinOpKind::And: op = TapeOp::And; break;
          case BinOpKind::Or: op = TapeOp::Or; break;
          default: return false;
        }
        tape_.code.push_back({op, 0, 0, 0});
        return true;
      }
      case ExprKind::UnOp: {
        if (!compile_expr(*e.args[0])) return false;
        tape_.code.push_back({e.un_op == sac::UnOpKind::Neg ? TapeOp::Neg : TapeOp::Not, 0, 0, 0});
        return true;
      }
      case ExprKind::Call: {
        if (e.name == "min" || e.name == "max") {
          if (e.args.size() != 2) return false;
          if (!compile_expr(*e.args[0]) || !compile_expr(*e.args[1])) return false;
          tape_.code.push_back({e.name == "min" ? TapeOp::Min : TapeOp::Max, 0, 0, 0});
          return true;
        }
        if (e.name == "abs" && e.args.size() == 1) {
          if (!compile_expr(*e.args[0])) return false;
          tape_.code.push_back({TapeOp::Abs, 0, 0, 0});
          return true;
        }
        return false;
      }
      case ExprKind::Select: {
        // `arrayvar[[i0, i1, ...]]` (full-rank selection) or a
        // selection from a literal constant array (baked-in
        // coefficient tables -> immediate arrays).
        const Expr& arr = *e.args[0];
        const Expr& idx = *e.args[1];
        std::int32_t id;
        std::size_t rank;
        if (arr.kind == ExprKind::Var) {
          auto dims = array_dims_->find(arr.name);
          if (dims == array_dims_->end()) return false;
          id = array_id(arr.name);
          rank = dims->second.size();
        } else if (auto lit = sac::literal_value(arr); lit && lit->is_int()) {
          id = immediate_id(*lit);
          rank = lit->shape().rank();
        } else {
          return false;
        }
        std::vector<const Expr*> comps;
        if (idx.kind == ExprKind::ArrayLit) {
          for (const sac::ExprPtr& c : idx.args) comps.push_back(c.get());
        } else {
          comps.push_back(&idx);  // scalar index into a rank-1 array
        }
        if (comps.size() != rank) return false;
        for (const Expr* c : comps) {
          if (!compile_expr(*c)) return false;
        }
        tape_.code.push_back({TapeOp::LoadArr, id, static_cast<std::int32_t>(comps.size()), 0});
        return true;
      }
      default:
        return false;
    }
  }

  std::int32_t immediate_id(const sac::Value& v) {
    TapeImmediate imm;
    imm.dims = v.shape().dims();
    imm.strides = v.shape().strides();
    imm.data.resize(static_cast<std::size_t>(v.ints().elements()));
    for (std::int64_t i = 0; i < v.ints().elements(); ++i) {
      imm.data[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(v.ints()[i]);
    }
    for (std::size_t k = 0; k < tape_.imm_arrays.size(); ++k) {
      if (tape_.imm_arrays[k].data == imm.data && tape_.imm_arrays[k].dims == imm.dims) {
        return -static_cast<std::int32_t>(k) - 1;
      }
    }
    tape_.imm_arrays.push_back(std::move(imm));
    return -static_cast<std::int32_t>(tape_.imm_arrays.size());
  }

  std::int32_t array_id(const std::string& name) {
    for (std::size_t i = 0; i < tape_.array_names.size(); ++i) {
      if (tape_.array_names[i] == name) return static_cast<std::int32_t>(i);
    }
    tape_.array_names.push_back(name);
    return static_cast<std::int32_t>(tape_.array_names.size() - 1);
  }

  const std::map<std::string, Index>* array_dims_;
  Tape tape_;
  std::map<std::string, int> slots_;
  int next_slot_ = 0;
};

}  // namespace

std::optional<Tape> compile_tape(const std::vector<StmtPtr>& body,
                                 const std::vector<const Expr*>& results,
                                 const std::vector<std::string>& index_vars,
                                 const std::map<std::string, Index>& array_dims) {
  TapeBuilder builder(array_dims);
  return builder.build(body, results, index_vars);
}

}  // namespace saclo::sac_cuda
