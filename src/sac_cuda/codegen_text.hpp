#pragma once

#include <string>

#include "sac_cuda/program.hpp"

namespace saclo::sac_cuda {

/// Emits the CUDA C translation unit for a planned program: one
/// `__global__` kernel per with-loop generator (Section VII of the
/// paper) and a host driver with cudaMalloc / cudaMemcpy / launch
/// calls. This is the artefact a user would compile with nvcc on a
/// real GPU; the golden tests pin its shape.
std::string emit_cuda_source(const CudaProgram& program);

/// Emits one kernel only (used by the examples to show individual
/// generator outlining).
std::string emit_kernel_source(const GenKernel& kernel, const KernelGroup& group,
                               const std::map<std::string, Shape>& shapes);

}  // namespace saclo::sac_cuda
