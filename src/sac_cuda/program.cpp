#include "sac_cuda/program.hpp"

#include <algorithm>
#include <functional>

#include "core/fmt.hpp"
#include "sac/builtins.hpp"
#include "sac/interp.hpp"
#include "sac/specialize.hpp"

namespace saclo::sac_cuda {

using sac::Expr;
using sac::ExprKind;
using sac::Generator;
using sac::Stmt;
using sac::StmtKind;
using sac::StmtPtr;
using sac::Value;
using sac::WithOpKind;

namespace {

void visit_all_exprs(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const sac::ExprPtr& a : e.args) {
    if (a) visit_all_exprs(*a, fn);
  }
  for (const Generator& g : e.generators) {
    if (g.lower) visit_all_exprs(*g.lower, fn);
    if (g.upper) visit_all_exprs(*g.upper, fn);
    if (g.step) visit_all_exprs(*g.step, fn);
    if (g.width) visit_all_exprs(*g.width, fn);
    for (const StmtPtr& s : g.body) {
      if (s->value) visit_all_exprs(*s->value, fn);
      for (const sac::ExprPtr& i : s->indices) {
        if (i) visit_all_exprs(*i, fn);
      }
    }
    if (g.value) visit_all_exprs(*g.value, fn);
  }
  if (e.op.shape_or_target) visit_all_exprs(*e.op.shape_or_target, fn);
  if (e.op.default_value) visit_all_exprs(*e.op.default_value, fn);
}

void collect_reads(const Stmt& s, std::set<std::string>& reads) {
  auto on_expr = [&](const Expr& x) {
    if (x.kind == ExprKind::Var) reads.insert(x.name);
  };
  if (s.value) visit_all_exprs(*s.value, on_expr);
  for (const sac::ExprPtr& i : s.indices) {
    if (i) visit_all_exprs(*i, on_expr);
  }
  if (s.for_init) visit_all_exprs(*s.for_init, on_expr);
  if (s.for_cond) visit_all_exprs(*s.for_cond, on_expr);
  if (s.for_step) visit_all_exprs(*s.for_step, on_expr);
  for (const StmtPtr& c : s.body) collect_reads(*c, reads);
  for (const StmtPtr& c : s.else_body) collect_reads(*c, reads);
  if (s.kind == StmtKind::ElemAssign) reads.insert(s.target);
}

// --- static operation estimates ----------------------------------------------------

std::optional<double> ops_of_expr(const Expr& e);

std::optional<double> ops_of_block(const std::vector<StmtPtr>& body);

std::optional<double> ops_of_with(const Expr& e) {
  double total = 2;  // result allocation bookkeeping
  for (const Generator& g : e.generators) {
    auto cg = sac::concrete_generator(g);
    if (!cg) return std::nullopt;
    auto body_ops = ops_of_block(g.body);
    auto value_ops = ops_of_expr(*g.value);
    if (!body_ops || !value_ops) return std::nullopt;
    total += static_cast<double>(cg->points()) *
             (*body_ops + *value_ops + 2.0 * static_cast<double>(cg->lb.size()));
  }
  return total;
}

std::optional<double> ops_of_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::BoolLit:
      return 0.0;
    case ExprKind::Var:
      return 0.5;
    case ExprKind::ArrayLit: {
      double total = static_cast<double>(e.args.size());
      for (const sac::ExprPtr& a : e.args) {
        auto x = ops_of_expr(*a);
        if (!x) return std::nullopt;
        total += *x;
      }
      return total;
    }
    case ExprKind::BinOp:
    case ExprKind::UnOp: {
      double total = 1.0;
      for (const sac::ExprPtr& a : e.args) {
        auto x = ops_of_expr(*a);
        if (!x) return std::nullopt;
        total += *x;
      }
      return total;
    }
    case ExprKind::Call: {
      double total = e.name == "MV" ? 8.0 : 2.0;
      for (const sac::ExprPtr& a : e.args) {
        auto x = ops_of_expr(*a);
        if (!x) return std::nullopt;
        total += *x;
      }
      return total;
    }
    case ExprKind::Select: {
      auto idx = ops_of_expr(*e.args[1]);
      auto arr = ops_of_expr(*e.args[0]);
      if (!idx || !arr) return std::nullopt;
      return 2.0 + *idx + *arr;
    }
    case ExprKind::With:
      return ops_of_with(e);
  }
  return std::nullopt;
}

/// Trip count of `for (v = init; v < K; v += s)` with literal pieces.
std::optional<double> trip_count(const Stmt& s) {
  auto init = sac::literal_value(*s.for_init);
  auto step = sac::literal_value(*s.for_step);
  if (!init || !step || !init->is_int() || !step->is_int()) return std::nullopt;
  const Expr& cond = *s.for_cond;
  if (cond.kind != ExprKind::BinOp) return std::nullopt;
  if (cond.args[0]->kind != ExprKind::Var || cond.args[0]->name != s.target) return std::nullopt;
  auto bound = sac::literal_value(*cond.args[1]);
  if (!bound || !bound->is_int()) return std::nullopt;
  const std::int64_t i0 = init->as_int();
  const std::int64_t st = step->as_int();
  const std::int64_t b = bound->as_int();
  if (st <= 0) return std::nullopt;
  std::int64_t end = b;
  if (cond.bin_op == sac::BinOpKind::Le) {
    end = b + 1;
  } else if (cond.bin_op != sac::BinOpKind::Lt) {
    return std::nullopt;
  }
  if (end <= i0) return 0.0;
  return static_cast<double>((end - i0 + st - 1) / st);
}

std::optional<double> ops_of_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign: {
      if (!s.value) return 1.0;
      auto v = ops_of_expr(*s.value);
      if (!v) return std::nullopt;
      return 1.0 + *v;
    }
    case StmtKind::ElemAssign: {
      double total = 2.0;
      for (const sac::ExprPtr& i : s.indices) {
        auto x = ops_of_expr(*i);
        if (!x) return std::nullopt;
        total += *x;
      }
      auto v = ops_of_expr(*s.value);
      if (!v) return std::nullopt;
      return total + *v;
    }
    case StmtKind::For: {
      auto trips = trip_count(s);
      auto body = ops_of_block(s.body);
      if (!trips || !body) return std::nullopt;
      return *trips * (*body + 4.0) + 2.0;
    }
    case StmtKind::If: {
      auto c = ops_of_expr(*s.value);
      auto a = ops_of_block(s.body);
      auto b = ops_of_block(s.else_body);
      if (!c || !a || !b) return std::nullopt;
      return *c + std::max(*a, *b) + 1.0;
    }
    case StmtKind::Return: {
      auto v = ops_of_expr(*s.value);
      if (!v) return std::nullopt;
      return *v;
    }
  }
  return std::nullopt;
}

std::optional<double> ops_of_block(const std::vector<StmtPtr>& body) {
  double total = 0.0;
  for (const StmtPtr& s : body) {
    auto x = ops_of_stmt(*s);
    if (!x) return std::nullopt;
    total += *x;
  }
  return total;
}

}  // namespace

std::optional<double> estimate_ops(const std::vector<StmtPtr>& body) {
  return ops_of_block(body);
}

// --- planning -------------------------------------------------------------------------

namespace {

/// Address stride (in elements) between warp-adjacent threads (t0+1)
/// for every global access of the flattened generator; worst case when
/// an index is not affine (boundary generators keep `% extent`).
std::int64_t warp_stride_of(const Generator& g, const sac::affine::Lattice& lat,
                            const std::map<std::string, Shape>& shapes, const Shape& full,
                            std::int64_t step0) {
  sac::affine::AffineEval ae(lat);
  ae.bind_block(g.body);
  std::int64_t worst = 1;
  auto on_expr = [&](const Expr& x) {
    if (x.kind != ExprKind::Select || x.args[0]->kind != ExprKind::Var) return;
    auto it = shapes.find(x.args[0]->name);
    if (it == shapes.end()) return;
    const Index strides = it->second.strides();
    auto lin = ae.eval_vector(*x.args[1]);
    if (!lin || lin->size() != strides.size()) {
      worst = std::max<std::int64_t>(worst, 1 << 20);  // unknown: assume uncoalesced
      return;
    }
    std::int64_t delta = 0;
    for (std::size_t d = 0; d < lin->size(); ++d) {
      if (!(*lin)[d].coeff.empty()) delta += (*lin)[d].coeff[0] * strides[d];
    }
    worst = std::max<std::int64_t>(worst, std::llabs(delta));
  };
  for (const StmtPtr& s : g.body) {
    if (s->value) visit_all_exprs(*s->value, on_expr);
  }
  visit_all_exprs(*g.value, on_expr);
  // The output store moves step0 rows per adjacent thread.
  if (!full.dims().empty()) {
    worst = std::max<std::int64_t>(worst, std::llabs(step0 * full.strides()[0]));
  }
  return worst;
}

std::optional<KernelGroup> plan_with(const std::string& target, const Expr& w,
                                     const std::map<std::string, Shape>& shapes,
                                     const std::map<std::string, sac::ElemType>& param_elems,
                                     const std::string& kernel_prefix) {
  if (w.op.kind == WithOpKind::Fold) return std::nullopt;  // reductions stay on the host
  auto it = shapes.find(target);
  if (it == shapes.end()) return std::nullopt;
  const Shape full = it->second;

  KernelGroup group;
  group.target = target;
  group.full = full;
  if (w.op.kind == WithOpKind::Modarray) {
    // modarray(T): a device copy of T followed by the generator
    // kernels overwriting their regions.
    if (w.op.shape_or_target->kind != ExprKind::Var) return std::nullopt;
    group.is_modarray = true;
    group.modarray_source = w.op.shape_or_target->name;
    if (!shapes.count(group.modarray_source) ||
        shapes.at(group.modarray_source) != full) {
      return std::nullopt;
    }
    std::size_t gen_rank = full.rank();
    if (!w.generators.empty()) {
      auto lat = sac::lattice_of(w.generators[0]);
      if (!lat) return std::nullopt;
      gen_rank = lat->rank();
    }
    if (gen_rank > full.rank()) return std::nullopt;
    group.frame = full.take(gen_rank);
  } else {
    auto shp = sac::literal_value(*w.op.shape_or_target);
    if (!shp || !shp->is_int()) return std::nullopt;
    group.frame = Shape(shp->as_index_vector());
    if (full.rank() < group.frame.rank()) return std::nullopt;
    if (full.take(group.frame.rank()) != group.frame) return std::nullopt;
  }
  const Shape frame = group.frame;
  const Shape cell = full.drop(frame.rank());

  if (w.op.default_value) {
    auto dv = sac::literal_value(*w.op.default_value);
    if (!dv || !dv->is_int() || dv->shape().rank() != 0) return std::nullopt;
    group.default_value = dv->as_int();
  }

  std::int64_t covered = 0;
  std::set<std::string> inputs;
  for (std::size_t gi = 0; gi < w.generators.size(); ++gi) {
    Generator g = sac::clone_generator(w.generators[gi]);
    auto lat = sac::lattice_of(g);
    if (!lat) return std::nullopt;
    if (!sac::flatten_cell(g, cell)) return std::nullopt;

    // Collect the result element expressions.
    std::vector<const Expr*> results;
    if (cell.rank() == 0) {
      results.push_back(g.value.get());
    } else {
      for (const sac::ExprPtr& e : g.value->args) results.push_back(e.get());
    }

    // Index variable slot names.
    std::vector<std::string> index_vars;
    if (!lat->vector_name.empty()) return std::nullopt;  // vector-var gens should be rare here
    index_vars = lat->scalar_names;

    // Array dims of everything selectable.
    std::map<std::string, Index> array_dims;
    std::set<std::string> used;
    auto scan = [&](const Expr& x) {
      if (x.kind == ExprKind::Select && x.args[0]->kind == ExprKind::Var) {
        used.insert(x.args[0]->name);
      }
    };
    for (const StmtPtr& s : g.body) {
      if (s->value) visit_all_exprs(*s->value, scan);
    }
    visit_all_exprs(*g.value, scan);
    for (const std::string& name : used) {
      auto sh = shapes.find(name);
      if (sh == shapes.end()) continue;  // local scalar chains — tape resolves or fails
      // Kernels are integer-only.
      auto pe = param_elems.find(name);
      if (pe != param_elems.end() && pe->second == sac::ElemType::Float) return std::nullopt;
      array_dims[name] = sh->second.dims();
    }

    auto tape = compile_tape(g.body, results, index_vars, array_dims);
    if (!tape) return std::nullopt;

    GenKernel k;
    k.name = cat(kernel_prefix, "_g", gi);
    k.lattice = *lat;
    k.cell = cell;
    k.threads = 1;
    std::int64_t pts = 1;
    for (const auto& d : lat->dims) pts *= d.extent;
    k.threads = pts;
    covered += pts;
    k.cost.flops_per_thread =
        tape->arith_ops() + 2.0 * static_cast<double>(lat->dims.size());
    k.cost.global_loads_per_thread = tape->array_loads();
    k.cost.global_stores_per_thread = static_cast<double>(std::max<std::int64_t>(cell.elements(), 1));
    k.cost.bytes_per_access = 4;  // the paper's frames are 32-bit ints
    k.cost.warp_access_stride =
        warp_stride_of(g, *lat, shapes, full, lat->dims.empty() ? 1 : lat->dims[0].step);
    for (const std::string& a : tape->array_names) inputs.insert(a);
    k.tape = std::move(*tape);
    k.source = std::move(g);
    group.kernels.push_back(std::move(k));
  }
  group.needs_default_fill = !group.is_modarray && covered < frame.elements();
  if (group.is_modarray) inputs.insert(group.modarray_source);
  group.inputs.assign(inputs.begin(), inputs.end());
  return group;
}

}  // namespace

CudaProgram CudaProgram::plan(const sac::CompiledFunction& fn) {
  CudaProgram prog;
  prog.fn_.fn = sac::FunDef{fn.fn.name, fn.fn.return_type, fn.fn.params,
                            sac::clone_block(fn.fn.body), fn.fn.line};
  prog.fn_.stats = fn.stats;
  prog.fn_.param_shapes = fn.param_shapes;
  prog.fn_.param_elems = fn.param_elems;
  prog.shapes_ = sac::infer_shapes(prog.fn_.fn.body, prog.fn_.param_shapes);

  const auto& body = prog.fn_.fn.body;
  auto flush_host = [&](std::vector<std::size_t>& pending) {
    if (pending.empty()) return;
    Step step;
    step.kind = Step::Kind::Host;
    step.host.stmt_indices = pending;
    std::set<std::string> reads;
    for (std::size_t i : pending) collect_reads(*body[i], reads);
    for (const std::string& r : reads) {
      if (prog.shapes_.count(r) && prog.shapes_.at(r).rank() > 0) {
        step.host.array_reads.push_back(r);
      }
    }
    std::vector<StmtPtr> clones;
    for (std::size_t i : pending) clones.push_back(body[i]->clone());
    if (auto ops = ops_of_block(clones)) step.host.static_ops = *ops;
    prog.steps_.push_back(std::move(step));
    pending.clear();
  };

  std::vector<std::size_t> pending_host;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const Stmt& s = *body[i];
    if (s.kind == StmtKind::Return) {
      if (s.value->kind == ExprKind::Var) {
        prog.return_var_ = s.value->name;
      } else {
        // Compute the return expression on the host into a pseudo-var.
        pending_host.push_back(i);
        prog.return_var_ = "__result";
      }
      continue;
    }
    if (s.kind == StmtKind::Assign && s.value && s.value->kind == ExprKind::With) {
      auto group = plan_with(s.target, *s.value, prog.shapes_, prog.fn_.param_elems,
                             cat(prog.fn_.fn.name, "_w", i));
      if (group) {
        flush_host(pending_host);
        Step step;
        step.kind = Step::Kind::Kernels;
        step.group = std::move(*group);
        prog.steps_.push_back(std::move(step));
        continue;
      }
    }
    pending_host.push_back(i);
  }
  flush_host(pending_host);
  if (prog.return_var_.empty()) {
    throw BackendError(cat("function '", prog.fn_.fn.name, "' has no return statement"));
  }
  return prog;
}

int CudaProgram::kernel_count() const {
  int n = 0;
  for (const Step& s : steps_) {
    if (s.kind == Step::Kind::Kernels) n += static_cast<int>(s.group.kernels.size());
  }
  return n;
}

int CudaProgram::host_block_count() const {
  int n = 0;
  for (const Step& s : steps_) {
    if (s.kind == Step::Kind::Host) ++n;
  }
  return n;
}

// --- execution -------------------------------------------------------------------------

sac::Value CudaProgram::run(gpu::cuda::Runtime& rt, const std::vector<sac::Value>& args,
                            const gpu::HostSpec& host, gpu::Profiler& host_profiler,
                            const RunOptions& options) {
  const bool execute = options.execute;
  if (args.size() != fn_.fn.params.size()) {
    throw BackendError(cat("program '", fn_.fn.name, "' expects ", fn_.fn.params.size(),
                           " arguments, got ", args.size()));
  }
  const gpu::StreamSet ss = options.streams.value_or(gpu::StreamSet{});
  const bool async = options.streams.has_value();
  std::map<std::string, Value> host_env;
  std::map<std::string, gpu::cuda::DeviceArray<std::int32_t>> device;
  std::set<std::string> device_valid;
  std::set<std::string> host_valid;
  std::set<std::string> host_written;  // arrays produced by host steps this invocation

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& name = fn_.fn.params[i].second;
    host_env.emplace(name, args[i]);
    host_valid.insert(name);
  }

  auto shape_of = [&](const std::string& name) -> const Shape& {
    auto it = shapes_.find(name);
    if (it == shapes_.end()) {
      throw BackendError(cat("no shape recorded for '", name, "'"));
    }
    return it->second;
  };

  auto ensure_device = [&](const std::string& name) {
    if (device_valid.count(name)) return;
    const bool account = !options.silent_params.count(name);
    // Re-uploads of host-computed intermediates (the generic tiler's
    // results) stay in-line with the kernels; fresh param uploads go on
    // the copy-in stream so they can overlap earlier frames' compute.
    const gpu::StreamId stream = host_written.count(name) ? ss.compute : ss.h2d;
    const Shape& shape = shape_of(name);
    auto it = device.find(name);
    if (it == device.end()) {
      it = device.emplace(name, rt.device_alloc<std::int32_t>(shape)).first;
    }
    if (execute) {
      auto h = host_env.find(name);
      if (h == host_env.end() || !h->second.is_int()) {
        throw BackendError(cat("host value for '", name, "' missing before host2device"));
      }
      rt.host2device_frame(it->second, h->second.ints(), true, account, stream);
    } else {
      rt.host2device_frame(it->second, IntArray(shape), false, account, stream);
    }
    device_valid.insert(name);
  };

  auto ensure_host = [&](const std::string& name, bool account, gpu::StreamId stream) {
    if (host_valid.count(name)) return;
    if (!device_valid.count(name)) {
      if (!execute) return;  // timing-only run: nothing to materialise
      throw BackendError(cat("value of '", name, "' is nowhere"));
    }
    auto it = device.find(name);
    IntArray back = rt.device2host_frame(it->second, execute, account, stream);
    if (execute) host_env.insert_or_assign(name, Value(std::move(back)));
    host_valid.insert(name);
  };

  sac::Module empty_module;
  sac::Interp interp(empty_module);

  for (std::size_t si = 0; si < steps_.size(); ++si) {
    const Step& step = steps_[si];
    if (step.kind == Step::Kind::Kernels) {
      const KernelGroup& group = step.group;
      for (const std::string& in : group.inputs) ensure_device(in);
      auto dit = device.find(group.target);
      if (dit == device.end()) {
        dit = device.emplace(group.target, rt.device_alloc<std::int32_t>(group.full)).first;
      }
      auto out_span = dit->second.view();

      if (group.is_modarray) {
        // Device-to-device copy of the modarray target (coalesced).
        auto src_span = device.at(group.modarray_source).view();
        gpu::KernelLaunch copy;
        copy.name = group.target + "_copy";
        copy.threads = group.full.elements();
        copy.cost.global_loads_per_thread = 1;
        copy.cost.global_stores_per_thread = 1;
        copy.cost.warp_access_stride = 1;
        copy.reads.push_back(device.at(group.modarray_source).handle());
        copy.writes.push_back(dit->second.handle());
        copy.body = [src_span, out_span](std::int64_t tid) {
          out_span[static_cast<std::size_t>(tid)] = src_span[static_cast<std::size_t>(tid)];
        };
        copy.range_body = [src_span, out_span](std::int64_t begin, std::int64_t end) {
          std::copy(src_span.begin() + begin, src_span.begin() + end, out_span.begin() + begin);
        };
        rt.launch(copy, execute, ss.compute);
      }
      if (group.needs_default_fill) {
        gpu::KernelLaunch fill;
        fill.name = group.target + "_init";
        fill.threads = group.full.elements();
        fill.cost.global_stores_per_thread = 1;
        fill.cost.warp_access_stride = 1;
        fill.writes.push_back(dit->second.handle());
        const std::int32_t dv = static_cast<std::int32_t>(group.default_value);
        fill.body = [out_span, dv](std::int64_t tid) {
          out_span[static_cast<std::size_t>(tid)] = dv;
        };
        fill.range_body = [out_span, dv](std::int64_t begin, std::int64_t end) {
          std::fill(out_span.begin() + begin, out_span.begin() + end, dv);
        };
        rt.launch(fill, execute, ss.compute);
      }

      for (const GenKernel& k : group.kernels) {
        // Bind tape arrays in tape id order.
        std::vector<TapeArray> arrays;
        arrays.reserve(k.tape.array_names.size());
        for (const std::string& an : k.tape.array_names) {
          const Shape& shp = shape_of(an);
          TapeArray ta;
          ta.data = device.at(an).view();
          ta.dims = shp.dims();
          ta.strides = shp.strides();
          arrays.push_back(std::move(ta));
        }
        const Tape* tape = &k.tape;
        const auto lat = k.lattice;  // copy into closure
        const Index full_strides = group.full.strides();
        const std::size_t rank = lat.dims.size();
        const int slot_count = k.tape.slot_count;

        gpu::KernelLaunch launch;
        launch.name = k.name;
        launch.threads = k.threads;
        launch.cost = k.cost;
        for (const std::string& an : k.tape.array_names) {
          launch.reads.push_back(device.at(an).handle());
        }
        launch.writes.push_back(dit->second.handle());
        launch.body = [tape, arrays, lat, full_strides, rank, slot_count,
                       out_span](std::int64_t tid) {
          thread_local std::vector<std::int64_t> slots;
          if (slots.size() < static_cast<std::size_t>(slot_count)) slots.resize(slot_count);
          // Decode the global id with dimension 0 fastest (the
          // `iGID % n0` mapping of the generated code, Figure 11).
          std::int64_t rest = tid;
          std::int64_t out_base = 0;
          for (std::size_t d = 0; d < rank; ++d) {
            const auto& dim = lat.dims[d];
            const std::int64_t t = rest % dim.extent;
            rest /= dim.extent;
            const std::int64_t iv = dim.lb + dim.step * t;
            slots[static_cast<std::size_t>(tape->index_slots[d])] = iv;
            out_base += iv * full_strides[d];
          }
          tape->run(slots, arrays);
          for (std::size_t c = 0; c < tape->result_slots.size(); ++c) {
            out_span[static_cast<std::size_t>(out_base + static_cast<std::int64_t>(c))] =
                static_cast<std::int32_t>(slots[static_cast<std::size_t>(tape->result_slots[c])]);
          }
        };
        // Range form for backends that execute for real: the slot
        // scratch is sized once per chunk instead of checked per id,
        // leaving a tight decode/run/store loop.
        launch.range_body = [tape, arrays, lat, full_strides, rank, slot_count,
                             out_span](std::int64_t begin, std::int64_t end) {
          std::vector<std::int64_t> slots(static_cast<std::size_t>(slot_count));
          for (std::int64_t tid = begin; tid < end; ++tid) {
            std::int64_t rest = tid;
            std::int64_t out_base = 0;
            for (std::size_t d = 0; d < rank; ++d) {
              const auto& dim = lat.dims[d];
              const std::int64_t t = rest % dim.extent;
              rest /= dim.extent;
              const std::int64_t iv = dim.lb + dim.step * t;
              slots[static_cast<std::size_t>(tape->index_slots[d])] = iv;
              out_base += iv * full_strides[d];
            }
            tape->run(slots, arrays);
            for (std::size_t c = 0; c < tape->result_slots.size(); ++c) {
              out_span[static_cast<std::size_t>(out_base + static_cast<std::int64_t>(c))] =
                  static_cast<std::int32_t>(
                      slots[static_cast<std::size_t>(tape->result_slots[c])]);
            }
          }
        };
        rt.launch(launch, execute, ss.compute);
      }
      device_valid.insert(group.target);
      host_valid.erase(group.target);
      continue;
    }

    // Host step. Its device2host fetches stay in-line with the kernels
    // (they are in the compute-critical path — the paper's generic
    // output-tiler penalty), and the host work itself occupies a host
    // timeline between the fetch and any re-upload.
    for (const std::string& r : step.host.array_reads) {
      if (device_valid.count(r)) ensure_host(r, /*account=*/true, ss.compute);
    }
    double ops = step.host.static_ops;
    if (execute) {
      std::vector<StmtPtr> stmts;
      for (std::size_t i : step.host.stmt_indices) stmts.push_back(fn_.fn.body[i]->clone());
      const double before = interp.ops();
      auto returned = interp.exec_stmts(stmts, host_env);
      const double measured = interp.ops() - before;
      measured_host_ops_[si] = measured;
      if (ops < 0) ops = measured;
      if (returned) host_env.insert_or_assign("__result", std::move(*returned));
    } else if (ops < 0) {
      auto m = measured_host_ops_.find(si);
      if (m == measured_host_ops_.end()) {
        throw BackendError("host step needs one executed run before timing-only runs");
      }
      ops = m->second;
    }
    // Mark everything written by the block (including writes nested in
    // loops/conditionals) as host-resident; their device copies are
    // stale now.
    std::function<void(const Stmt&)> mark_writes = [&](const Stmt& s) {
      if (!s.target.empty()) {
        host_valid.insert(s.target);
        device_valid.erase(s.target);
        host_written.insert(s.target);
      }
      for (const StmtPtr& c : s.body) mark_writes(*c);
      for (const StmtPtr& c : s.else_body) mark_writes(*c);
    };
    for (std::size_t i : step.host.stmt_indices) mark_writes(*fn_.fn.body[i]);
    if (async) {
      // The host block starts once its fetches landed (compute-stream
      // tail covers them: fetches were just issued there) and blocks
      // the kernels that consume its results.
      gpu::VirtualGpu& g = rt.gpu();
      g.wait_until(ss.host, g.stream_tail_us(ss.compute));
      g.run_host(cat(fn_.fn.name, "_host"), host.time_us(ops), ss.host);
      g.wait_until(ss.compute, g.stream_tail_us(ss.host));
    } else {
      host_profiler.record(cat(fn_.fn.name, "_host"), gpu::OpKind::Host, 1, host.time_us(ops));
    }
  }

  ensure_host(return_var_, /*account=*/!options.silent_result, ss.d2h);
  if (!execute) return Value();
  auto it = host_env.find(return_var_);
  if (it == host_env.end()) {
    throw BackendError(cat("result variable '", return_var_, "' was never produced"));
  }
  return it->second;
}

// --- sequential lowering ---------------------------------------------------------------

HostRunResult run_sequential(const sac::CompiledFunction& fn, const std::vector<sac::Value>& args,
                             const gpu::HostSpec& host, bool execute) {
  HostRunResult out;
  auto ops = estimate_ops(fn.fn.body);
  sac::Module mod;
  mod.functions.push_back(
      sac::FunDef{fn.fn.name, fn.fn.return_type, fn.fn.params, sac::clone_block(fn.fn.body), 0});
  sac::Interp interp(mod);
  if (execute) {
    out.result = interp.call(fn.fn.name, args);
    if (!ops) ops = interp.ops();
  } else if (!ops) {
    throw BackendError("sequential run needs statically countable ops for timing-only mode");
  }
  out.ops = *ops;
  out.time_us = host.time_us(out.ops);
  return out;
}

}  // namespace saclo::sac_cuda
