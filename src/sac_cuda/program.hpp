#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gpu/profiler.hpp"
#include "gpu/runtime_cuda.hpp"
#include "sac/pipeline.hpp"
#include "sac_cuda/tape.hpp"

namespace saclo::sac_cuda {

/// Raised when planning or running a CUDA program fails.
class BackendError : public Error {
 public:
  using Error::Error;
};

/// One outlined CUDA kernel: exactly one with-loop generator, as in
/// Section VII of the paper ("we outline each WITH-loop generator as a
/// kernel function").
struct GenKernel {
  std::string name;
  sac::affine::Lattice lattice;  ///< iteration space (iv = lb + step*t)
  Shape cell;
  Tape tape;
  gpu::KernelCost cost;
  std::int64_t threads = 0;
  /// The flattened generator (cell decomposed into scalar element
  /// expressions) — kept for the CUDA-C text emitter.
  sac::Generator source;
};

/// All kernels of one with-loop assignment, plus the data-transfer
/// metadata around them.
struct KernelGroup {
  std::string target;
  Shape frame;
  Shape full;  ///< frame ++ cell
  bool needs_default_fill = false;
  std::int64_t default_value = 0;
  /// modarray with-loops start from a device-to-device copy of the
  /// target array (sac2c's scheme for partially covering generators).
  bool is_modarray = false;
  std::string modarray_source;
  std::vector<std::string> inputs;  ///< free arrays the kernels read
  std::vector<GenKernel> kernels;
};

/// Statements that stay on the host (for-loop tilers, scalar glue).
/// Any device-resident array they read is copied back first — the
/// `device2host` penalty of the paper's generic output tiler.
struct HostBlock {
  std::vector<std::size_t> stmt_indices;  ///< into the compiled body
  std::vector<std::string> array_reads;
  double static_ops = -1.0;  ///< < 0: measured on first executed run
};

struct Step {
  enum class Kind { Kernels, Host };
  Kind kind = Kind::Host;
  KernelGroup group;
  HostBlock host;
};

/// A mini-SaC function compiled to (simulated) CUDA: the identification
/// of CUDA-with-loops, transfer insertion and kernel outlining of the
/// paper's Section VII.
class CudaProgram {
 public:
  /// Plans a compiled function (deep-copied). Ineligible with-loops
  /// silently fall back to host steps (exactly what sac2c does with
  /// for-loops).
  static CudaProgram plan(const sac::CompiledFunction& fn);

  const sac::CompiledFunction& compiled() const { return fn_; }
  const std::vector<Step>& steps() const { return steps_; }
  const std::map<std::string, Shape>& shapes() const { return shapes_; }
  const std::string& return_var() const { return return_var_; }

  /// Number of generator kernels (the paper's per-filter kernel counts).
  int kernel_count() const;
  /// Number of host-executed statement blocks.
  int host_block_count() const;

  /// The CUDA C translation unit a real backend would emit.
  std::string cuda_source() const;

  /// Per-invocation options. `silent_params` lists parameters whose
  /// upload is not profiled (they are conceptually already
  /// device-resident — handed over by an upstream program, as the
  /// vertical filter receives the horizontal filter's result).
  /// `silent_result` likewise suppresses accounting of the result
  /// fetch (a downstream program consumes it on the device).
  ///
  /// `streams`, when set, issues the invocation asynchronously: param
  /// uploads on streams->h2d, kernels (plus the generic tiler's
  /// in-line device2host/host2device traffic) on streams->compute, the
  /// result fetch on streams->d2h, and host blocks on a host timeline
  /// (streams->host) that takes part in the makespan. Kernel launches
  /// carry their buffer read/write sets, so cross-stream data hazards
  /// order the schedule; functional results are bit-exact versus
  /// synchronous issue.
  struct RunOptions {
    bool execute = true;
    std::set<std::string> silent_params;
    bool silent_result = false;
    std::optional<gpu::StreamSet> streams;
  };

  /// Executes one invocation. With execute=true data really moves and
  /// kernels really run (bit-exact against the interpreter); with
  /// execute=false only simulated time is accrued (repetition of a
  /// frame loop). Host-step times go to `host_profiler`; GPU times to
  /// the runtime's device profiler.
  sac::Value run(gpu::cuda::Runtime& rt, const std::vector<sac::Value>& args,
                 const gpu::HostSpec& host, gpu::Profiler& host_profiler,
                 const RunOptions& options);
  sac::Value run(gpu::cuda::Runtime& rt, const std::vector<sac::Value>& args,
                 const gpu::HostSpec& host, gpu::Profiler& host_profiler, bool execute) {
    RunOptions o;
    o.execute = execute;
    return run(rt, args, host, host_profiler, o);
  }

 private:
  sac::CompiledFunction fn_;
  std::vector<Step> steps_;
  std::string return_var_;
  std::map<std::string, Shape> shapes_;
  std::map<std::size_t, double> measured_host_ops_;  // step index -> ops
};

/// The sequential lowering: the whole compiled function runs on the
/// host model (the paper's SAC-Seq baselines). With execute=true the
/// result is computed by the reference interpreter; the simulated time
/// always comes from the operation estimate.
struct HostRunResult {
  sac::Value result;  ///< meaningful only when executed
  double ops = 0;
  double time_us = 0;
};
HostRunResult run_sequential(const sac::CompiledFunction& fn,
                             const std::vector<sac::Value>& args, const gpu::HostSpec& host,
                             bool execute);

/// Static abstract-operation estimate of a statement list (loop trip
/// counts and generator sizes must be literal). nullopt when something
/// is not statically countable.
std::optional<double> estimate_ops(const std::vector<sac::StmtPtr>& body);

}  // namespace saclo::sac_cuda
