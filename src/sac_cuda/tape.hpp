#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ndarray.hpp"
#include "sac/ast.hpp"

namespace saclo::sac_cuda {

/// A compiled, allocation-free evaluator for straight-line scalar
/// generator bodies — the simulated analogue of the PTX a real CUDA
/// backend would produce. Kernel bodies run once per thread, so they
/// must not walk the AST or touch hash maps; the tape is a flat
/// postfix program over an int64 stack.
enum class TapeOp : std::uint8_t {
  Push,      ///< push imm
  LoadSlot,  ///< push slots[a]
  StoreSlot, ///< slots[a] = pop
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  Not,
  Abs,
  Min,
  Max,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  LoadArr  ///< pop b indices, push arrays[a] element (bounds-checked);
           ///< negative a indexes the tape's immediate (constant)
           ///< arrays: imm_arrays[-a - 1] — the analogue of CUDA
           ///< __constant__ memory for literal coefficient tables
};

struct TapeInstr {
  TapeOp op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int64_t imm = 0;
};

/// A bound input array: element data plus row-major strides. Device
/// frames are 32-bit (the paper's pixel format); the tape widens on
/// load.
struct TapeArray {
  std::span<const std::int32_t> data;
  Index dims;
  Index strides;
};

/// A constant array baked into the tape (literal coefficient tables).
struct TapeImmediate {
  std::vector<std::int32_t> data;
  Index dims;
  Index strides;
};

/// A compiled kernel body: the statements execute first, then each
/// result expression's value is stored into its result slot. One
/// execution per thread; the caller pre-fills the index-variable slots
/// and reads the result slots afterwards.
class Tape {
 public:
  std::vector<TapeInstr> code;
  int slot_count = 0;
  std::vector<std::string> array_names;   ///< array id -> variable name
  std::vector<TapeImmediate> imm_arrays;  ///< constant arrays (negative LoadArr ids)
  std::vector<int> index_slots;           ///< slots of the index variables, in order
  std::vector<int> result_slots;          ///< slots holding the cell element values

  /// Counts for the kernel cost descriptor.
  int arith_ops() const;
  int array_loads() const;

  /// Executes the whole tape once. `slots` must have slot_count
  /// entries with the index slots pre-filled.
  void run(std::span<std::int64_t> slots, std::span<const TapeArray> arrays) const;

  std::string to_string() const;
};

/// Compiles straight-line statements plus result expressions into a
/// tape. Returns nullopt when the body is not tape-able (vector locals
/// that survived simplification, nested with-loops, float arithmetic,
/// control flow, ...), in which case the caller falls back to host
/// execution.
std::optional<Tape> compile_tape(const std::vector<sac::StmtPtr>& body,
                                 const std::vector<const sac::Expr*>& results,
                                 const std::vector<std::string>& index_vars,
                                 const std::map<std::string, Index>& array_dims);

}  // namespace saclo::sac_cuda
